package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Config selects the observability of one CLI run. The zero value means
// "nothing requested": Setup returns nil and the run pays only a nil check
// per trial.
type Config struct {
	// Tool, Seed, Options, Resume populate the manifest's RunMeta.
	Tool    string
	Seed    int64
	Options map[string]string
	Resume  string
	// TotalTrials is the overall trial budget, for ETA.
	TotalTrials int
	// Progress > 0 emits a progress line to ProgressW (default stderr)
	// at that interval.
	Progress  time.Duration
	ProgressW io.Writer
	// MetricsOut, when set, receives the final registry snapshot as JSON.
	MetricsOut string
	// Manifest, when set, receives the JSONL event log.
	Manifest string
	// Pprof, when set, serves /debug/pprof, /debug/vars and
	// /debug/metrics on that address for the duration of the run.
	Pprof string
}

func (c Config) active() bool {
	return c.Progress > 0 || c.MetricsOut != "" || c.Manifest != "" || c.Pprof != ""
}

// Instrumentation bundles the live observability of one CLI run: the
// registry and engine hook, the optional progress reporter, manifest
// writer and debug server. A nil *Instrumentation is valid and inert, so
// callers write `ins.PhaseDone(...)` unconditionally.
type Instrumentation struct {
	Registry *Registry
	Sim      *SimMetrics
	Manifest *ManifestWriter

	reporter     *ProgressReporter
	debug        *DebugServer
	manifestFile *os.File
	metricsFile  *os.File
}

// Setup validates the requested sinks up front — creating the manifest and
// metrics files, binding the pprof address — and starts the progress
// reporter. An unwritable path or unbindable address is an error here,
// before any trial runs. When cfg requests nothing, Setup returns
// (nil, nil): the inert instrumentation.
func Setup(cfg Config) (*Instrumentation, error) {
	if !cfg.active() {
		return nil, nil
	}
	ins := &Instrumentation{Registry: NewRegistry()}
	ins.Sim = NewSimMetrics(ins.Registry, cfg.TotalTrials)

	ok := false
	defer func() {
		if !ok {
			ins.teardown()
		}
	}()

	if cfg.Manifest != "" {
		f, err := os.Create(cfg.Manifest)
		if err != nil {
			return nil, fmt.Errorf("-manifest: %w", err)
		}
		ins.manifestFile = f
		ins.Manifest = NewManifestWriter(f, RunMeta{
			Tool:    cfg.Tool,
			Version: Version(),
			Seed:    cfg.Seed,
			Options: cfg.Options,
			Resume:  cfg.Resume,
		})
	}
	if cfg.MetricsOut != "" {
		f, err := os.Create(cfg.MetricsOut)
		if err != nil {
			return nil, fmt.Errorf("-metrics-out: %w", err)
		}
		ins.metricsFile = f
	}
	if cfg.Pprof != "" {
		d, err := ServeDebug(cfg.Pprof, ins.Registry)
		if err != nil {
			return nil, err
		}
		ins.debug = d
		fmt.Fprintf(os.Stderr, "%s: profiling at http://%s/debug/pprof/ (metrics at /debug/metrics)\n", cfg.Tool, d.Addr)
	}
	if cfg.Progress > 0 || ins.Manifest != nil {
		w := cfg.ProgressW
		if cfg.Progress > 0 && w == nil {
			w = os.Stderr
		}
		if cfg.Progress <= 0 {
			// Manifest-only runs still sample progress for the artifact,
			// at a coarse default, without printing anything.
			cfg.Progress = time.Second
			w = nil
		}
		ins.reporter = NewProgressReporter(w, cfg.Progress, ins.Sim, ins.Manifest)
		ins.reporter.Start()
	}
	ok = true
	return ins, nil
}

// Metrics returns the engine hook, or nil on an inert instrumentation —
// callers assign it only when non-nil, so the engine's disabled path stays
// a plain nil interface.
func (ins *Instrumentation) Metrics() *SimMetrics {
	if ins == nil {
		return nil
	}
	return ins.Sim
}

// AddBudget grows the trial budget behind the ETA.
func (ins *Instrumentation) AddBudget(trials int) {
	if ins != nil {
		ins.Sim.AddBudget(trials)
	}
}

// PhaseStart records a phase start in the manifest, if one is being
// written.
func (ins *Instrumentation) PhaseStart(name string) {
	if ins != nil && ins.Manifest != nil {
		ins.Manifest.PhaseStart(name)
	}
}

// PhaseDone records a phase end in the manifest, if one is being written.
func (ins *Instrumentation) PhaseDone(name, estimate, report string, err error) {
	if ins != nil && ins.Manifest != nil {
		ins.Manifest.PhaseDone(name, estimate, report, err)
	}
}

// teardown releases every sink without emitting final records.
func (ins *Instrumentation) teardown() {
	if ins.reporter != nil {
		ins.reporter.Stop()
	}
	if ins.debug != nil {
		ins.debug.Close()
	}
	if ins.manifestFile != nil {
		ins.manifestFile.Close()
	}
	if ins.metricsFile != nil {
		ins.metricsFile.Close()
	}
}

// Close finalizes the run: stops the reporter (emitting a last progress
// sample), writes the metrics snapshot to -metrics-out, closes the
// manifest with the snapshot and the run's outcome, and shuts the debug
// server down. It reports the first sink error — runErr itself is the
// caller's to return.
func (ins *Instrumentation) Close(runErr error) error {
	if ins == nil {
		return nil
	}
	if ins.reporter != nil {
		ins.reporter.Stop()
		ins.reporter = nil
	}
	snap := ins.Registry.Snapshot()
	var firstErr error
	if ins.metricsFile != nil {
		data, err := json.MarshalIndent(snap, "", " ")
		if err == nil {
			data = append(data, '\n')
			_, err = ins.metricsFile.Write(data)
		}
		// Fsync before close: the metrics snapshot is a run artifact, and
		// a post-run crash must not be able to take it with it.
		if serr := ins.metricsFile.Sync(); err == nil {
			err = serr
		}
		if cerr := ins.metricsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-metrics-out: %w", err)
		}
		ins.metricsFile = nil
	}
	if ins.Manifest != nil {
		err := ins.Manifest.Close(&snap, runErr)
		if serr := ins.manifestFile.Sync(); err == nil {
			err = serr
		}
		if cerr := ins.manifestFile.Close(); err == nil {
			err = cerr
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-manifest: %w", err)
		}
		ins.Manifest, ins.manifestFile = nil, nil
	}
	if ins.debug != nil {
		ins.debug.Close()
		ins.debug = nil
	}
	return firstErr
}
