package obs

// Fuzzing the manifest reader against hostile bytes: truncated JSONL,
// bit-flipped events, over-long lines, version skew, binary noise.
// ReadManifest must return a typed error (ErrCorruptManifest for
// malformed content) or a parsed log, and never panic. Run with
//
//	go test ./internal/obs -run='^$' -fuzz=FuzzReadManifest
//
// (`make fuzz` wraps a short run); the seed corpus below also executes on
// every plain `go test`.

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
)

func FuzzReadManifest(f *testing.F) {
	// Seed corpus: a real manifest, its truncations, and characteristic
	// corruptions.
	var buf bytes.Buffer
	mw := NewManifestWriter(&buf, RunMeta{Tool: "lrsim", Seed: 7})
	mw.PhaseStart("estimate")
	mw.Progress(ProgressSnapshot{Done: 10, Total: 100})
	mw.PhaseDone("estimate", "0.5", "10/100 trials", nil)
	mw.Close(nil, nil)
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                           // run died mid-write
	f.Add(valid[:len(valid)-3])                                           // torn final line
	f.Add([]byte(``))                                                     // empty log
	f.Add([]byte("\n\n\n"))                                               // blank lines only
	f.Add([]byte(`{"event":"run_start","meta":{"manifest_version":99}}`)) // version skew
	f.Add([]byte(`{"event":`))                                            // truncated JSON line
	f.Add([]byte(`not json`))                                             // garbage line
	f.Add([]byte("\x00\xff\x01"))                                         // binary noise
	f.Add([]byte(`{"event":"step","step":{"t":-1,"proc":-5}}`))           // odd but parseable

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			// os.ErrNotExist cannot happen here; every failure must be the
			// typed corruption error, never a panic.
			if !errors.Is(err, ErrCorruptManifest) {
				t.Fatalf("ReadManifest error is not ErrCorruptManifest: %v", err)
			}
			if errors.Is(err, os.ErrNotExist) {
				t.Fatalf("impossible error class: %v", err)
			}
			return
		}
		// A log that parses must be traversable without panics.
		_ = log.Meta()
		_ = log.Steps()
		if log.Summary != nil && log.Summary.Meta.Tool == "" && len(log.Events) == 0 {
			t.Fatal("summary without events")
		}
		// And its replay args must be well-formed flags.
		if m := log.Meta(); m != nil {
			for _, arg := range ReplayArgs(m.Options) {
				if !strings.HasPrefix(arg, "-") || !strings.Contains(arg, "=") {
					t.Fatalf("malformed replay arg %q", arg)
				}
			}
		}
	})
}
