package obs

// Run manifests: a JSONL event log plus a final JSON summary that together
// make a recorded run a regenerable artifact. The manifest records
// everything needed to reproduce the run bit-for-bit — seed, flag values,
// toolchain/VCS version — alongside what actually happened: per-phase
// timings, progress samples, per-step trace events, a final metrics
// snapshot, and the resume lineage of checkpointed runs.
//
// The same Event schema carries both sweep telemetry (phase/progress
// events from the CLIs) and single-run traces (step events from
// internal/trace), so one set of tooling reads both.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/span"
)

// ManifestVersion guards the on-disk event schema.
const ManifestVersion = 1

// ErrCorruptManifest matches every manifest-validation failure from
// ReadManifest/LoadManifest — unparseable JSONL, an unsupported schema
// version, an over-long line. It is the shared artifact-corruption
// sentinel (fault.ErrCorruptArtifact), so one errors.Is classifies
// corrupt checkpoints and corrupt manifests alike.
var ErrCorruptManifest = fault.ErrCorruptArtifact

// RunMeta identifies one recorded run: the tool, its version, the seed and
// the full flag assignment, plus the resume lineage when the run continued
// an earlier one.
type RunMeta struct {
	// ManifestVersion is the schema version of the event log.
	ManifestVersion int `json:"manifest_version"`
	// Tool is the producing command ("lrsim", "electcheck", "lrtrace").
	Tool string `json:"tool"`
	// Version identifies the build: the VCS revision when available
	// (Version()), so a manifest names the exact code that produced it.
	Version string `json:"version"`
	// Seed is the root RNG seed of the run.
	Seed int64 `json:"seed"`
	// Options maps every flag of the producing command to its effective
	// value (defaults included) — together with Seed this is the
	// reproduction recipe; see ReplayArgs.
	Options map[string]string `json:"options,omitempty"`
	// Resume is the state file the run resumed from, if any — the lineage
	// link between a manifest and its interrupted ancestor.
	Resume string `json:"resume,omitempty"`
	// StartUnixNs is the wall-clock start of the run.
	StartUnixNs int64 `json:"start_unix_ns"`
}

// Phase is one timed stage of a run (an estimator sweep, an analysis
// pass). Estimate and Report carry the stage's rendered outcome so a
// manifest alone documents what the run printed.
type Phase struct {
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns,omitempty"`
	Estimate    string `json:"estimate,omitempty"`
	Report      string `json:"report,omitempty"`
	Err         string `json:"error,omitempty"`
}

// StepEvent is one recorded simulation step — the schema shared between
// lrtrace streaming output and any future per-step sweep telemetry.
type StepEvent struct {
	T      float64 `json:"t"`
	Proc   int     `json:"proc"`
	Action string  `json:"action"`
	State  string  `json:"state,omitempty"`
}

// Summary is the final record of a run: meta, per-phase timings, the
// closing metrics snapshot, and the overall outcome.
type Summary struct {
	Meta        RunMeta   `json:"meta"`
	Phases      []Phase   `json:"phases,omitempty"`
	Metrics     *Snapshot `json:"metrics,omitempty"`
	EndUnixNs   int64     `json:"end_unix_ns"`
	Interrupted bool      `json:"interrupted,omitempty"`
	Err         string    `json:"error,omitempty"`
}

// Event is one JSONL record of a manifest. Exactly one payload field is
// set, discriminated by Event.
type Event struct {
	// Event is the record kind: "run_start", "phase_start", "phase_done",
	// "progress", "step", "span", or "run_done".
	Event      string            `json:"event"`
	TimeUnixNs int64             `json:"time_unix_ns"`
	Meta       *RunMeta          `json:"meta,omitempty"`
	Phase      *Phase            `json:"phase,omitempty"`
	Progress   *ProgressSnapshot `json:"progress,omitempty"`
	Step       *StepEvent        `json:"step,omitempty"`
	// Span is one completed trace span (kind "span") — the record the
	// span.Tracer JSONL exporter emits; trace files and manifests share
	// this envelope so one set of tooling reads both.
	Span    *span.Record `json:"span,omitempty"`
	Summary *Summary     `json:"summary,omitempty"`
}

// ManifestWriter streams Events as JSONL. It is safe for concurrent use
// (manifest writes are cold-path; a mutex serializes encoding) and keeps
// the growing Summary so Close can emit the final record without the
// caller re-assembling it.
type ManifestWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	meta    RunMeta
	phases  []Phase
	open    map[string]int // phase name -> index into phases
	werr    error
	closed  bool
	started time.Time
}

// NewManifestWriter emits the run_start event for meta onto w and returns
// the writer. meta.ManifestVersion and StartUnixNs are stamped here.
func NewManifestWriter(w io.Writer, meta RunMeta) *ManifestWriter {
	now := time.Now()
	meta.ManifestVersion = ManifestVersion
	meta.StartUnixNs = now.UnixNano()
	mw := &ManifestWriter{
		enc:     json.NewEncoder(w),
		meta:    meta,
		open:    map[string]int{},
		started: now,
	}
	mw.emit(Event{Event: "run_start", Meta: &mw.meta})
	return mw
}

// emit writes one event; the caller must not hold mu.
func (mw *ManifestWriter) emit(e Event) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.emitLocked(e)
}

func (mw *ManifestWriter) emitLocked(e Event) {
	if mw.werr != nil || mw.closed {
		return
	}
	if e.TimeUnixNs == 0 {
		e.TimeUnixNs = time.Now().UnixNano()
	}
	mw.werr = mw.enc.Encode(e)
}

// PhaseStart opens a named phase and records its start time.
func (mw *ManifestWriter) PhaseStart(name string) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	ph := Phase{Name: name, StartUnixNs: time.Now().UnixNano()}
	mw.open[name] = len(mw.phases)
	mw.phases = append(mw.phases, ph)
	mw.emitLocked(Event{Event: "phase_start", Phase: &ph})
}

// PhaseDone closes a phase with its rendered estimate, run report and
// error (nil for success). Closing a phase that was never started opens
// and closes it at once, with equal start and end stamps.
func (mw *ManifestWriter) PhaseDone(name, estimate, report string, err error) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	now := time.Now().UnixNano()
	i, ok := mw.open[name]
	if !ok {
		i = len(mw.phases)
		mw.phases = append(mw.phases, Phase{Name: name, StartUnixNs: now})
	}
	delete(mw.open, name)
	ph := &mw.phases[i]
	ph.EndUnixNs = now
	ph.Estimate = estimate
	ph.Report = report
	if err != nil {
		ph.Err = err.Error()
	}
	done := *ph
	mw.emitLocked(Event{Event: "phase_done", Phase: &done})
}

// Progress records one progress sample (the reporter tees its ticks here).
func (mw *ManifestWriter) Progress(s ProgressSnapshot) {
	mw.emit(Event{Event: "progress", Progress: &s})
}

// Step records one simulation step; the method matches the trace package's
// Sink interface, so a ManifestWriter can stream a recorder directly.
func (mw *ManifestWriter) Step(t float64, proc int, action, state string) {
	mw.emit(Event{Event: "step", Step: &StepEvent{T: t, Proc: proc, Action: action, State: state}})
}

// Close emits the run_done summary (with the final metrics snapshot and
// the run's outcome) and returns the first write error, if any. Further
// events are dropped.
func (mw *ManifestWriter) Close(metrics *Snapshot, runErr error) error {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	if mw.closed {
		return mw.werr
	}
	sum := Summary{
		Meta:      mw.meta,
		Phases:    mw.phases,
		Metrics:   metrics,
		EndUnixNs: time.Now().UnixNano(),
	}
	if runErr != nil {
		sum.Err = runErr.Error()
	}
	mw.emitLocked(Event{Event: "run_done", Summary: &sum})
	mw.closed = true
	return mw.werr
}

// ManifestLog is a parsed manifest: the full event stream plus the final
// summary, when the run closed cleanly.
type ManifestLog struct {
	Events  []Event
	Summary *Summary
}

// Meta returns the run_start metadata, falling back to the summary's copy.
func (l *ManifestLog) Meta() *RunMeta {
	for i := range l.Events {
		if l.Events[i].Event == "run_start" && l.Events[i].Meta != nil {
			return l.Events[i].Meta
		}
	}
	if l.Summary != nil {
		return &l.Summary.Meta
	}
	return nil
}

// Steps returns the step events in order.
func (l *ManifestLog) Steps() []StepEvent {
	var out []StepEvent
	for i := range l.Events {
		if l.Events[i].Event == "step" && l.Events[i].Step != nil {
			out = append(out, *l.Events[i].Step)
		}
	}
	return out
}

// ReadManifest parses a JSONL manifest stream. A truncated log (a run that
// died before Close) is not an error: Summary is simply nil.
func ReadManifest(r io.Reader) (*ManifestLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	log := &ManifestLog{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: manifest line %d: %v: %w", line, err, ErrCorruptManifest)
		}
		if e.Event == "run_start" && e.Meta != nil && e.Meta.ManifestVersion != ManifestVersion {
			return nil, fmt.Errorf("obs: manifest version %d, want %d: %w", e.Meta.ManifestVersion, ManifestVersion, ErrCorruptManifest)
		}
		log.Events = append(log.Events, e)
		if e.Event == "run_done" && e.Summary != nil {
			log.Summary = e.Summary
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("obs: reading manifest: %v: %w", err, ErrCorruptManifest)
		}
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	return log, nil
}

// LoadManifest reads a manifest file written via NewManifestWriter.
func LoadManifest(path string) (*ManifestLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening manifest: %w", err)
	}
	defer f.Close()
	return ReadManifest(f)
}

// ReplayArgs turns a recorded flag assignment back into a command line,
// skipping the given flags (observability and lifecycle flags that do not
// affect the estimates). Flags are emitted sorted by name, so the result
// is deterministic, and in single-token -name=value form, which the flag
// package accepts for boolean and non-boolean flags alike. Reproducing a
// run is then:
//
//	meta := log.Meta()
//	args := obs.ReplayArgs(meta.Options, "manifest", "progress", ...)
//	// run the tool named by meta.Tool with args
func ReplayArgs(options map[string]string, skip ...string) []string {
	drop := make(map[string]bool, len(skip))
	for _, s := range skip {
		drop[s] = true
	}
	names := make([]string, 0, len(options))
	for name := range options {
		if !drop[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	args := make([]string, 0, len(names))
	for _, name := range names {
		args = append(args, "-"+name+"="+options[name])
	}
	return args
}

// Version identifies the running build for manifest provenance: the VCS
// revision (plus "-dirty" when the tree was modified) from the embedded
// build info, the module version for tagged builds, or "unknown" for
// plain `go test` binaries.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + modified
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unknown"
}
