package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mw := NewManifestWriter(f, RunMeta{
		Tool:    "lrsim",
		Version: "abc123",
		Seed:    7,
		Options: map[string]string{"trials": "100", "seed": "7"},
		Resume:  "old-state.json",
	})
	mw.PhaseStart("n=3/slowest/reach")
	mw.Progress(ProgressSnapshot{Done: 50, Total: 100})
	mw.PhaseDone("n=3/slowest/reach", "0.8750 [0.79, 0.93] (n=100)", "100/100 trials", nil)
	mw.PhaseDone("never-started", "", "", errors.New("boom"))
	mw.Step(1.5, 2, "flip_2", "[F W R]")
	reg := NewRegistry()
	reg.Counter("sim.trials_completed").Add(100)
	snap := reg.Snapshot()
	if err := mw.Close(&snap, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := log.Meta()
	if meta == nil || meta.Tool != "lrsim" || meta.Seed != 7 || meta.Resume != "old-state.json" {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.ManifestVersion != ManifestVersion {
		t.Errorf("manifest version = %d", meta.ManifestVersion)
	}
	if log.Summary == nil {
		t.Fatal("summary missing")
	}
	if len(log.Summary.Phases) != 2 {
		t.Fatalf("phases = %+v", log.Summary.Phases)
	}
	ph := log.Summary.Phases[0]
	if ph.Name != "n=3/slowest/reach" || ph.EndUnixNs < ph.StartUnixNs || ph.Estimate == "" {
		t.Errorf("phase 0 = %+v", ph)
	}
	if log.Summary.Phases[1].Err != "boom" {
		t.Errorf("phase 1 error = %q, want boom", log.Summary.Phases[1].Err)
	}
	if log.Summary.Metrics == nil || log.Summary.Metrics.Counters["sim.trials_completed"] != 100 {
		t.Errorf("summary metrics = %+v", log.Summary.Metrics)
	}
	steps := log.Steps()
	if len(steps) != 1 || steps[0].Action != "flip_2" || steps[0].Proc != 2 {
		t.Errorf("steps = %+v", steps)
	}
	var kinds []string
	for _, e := range log.Events {
		kinds = append(kinds, e.Event)
	}
	want := "run_start phase_start progress phase_done phase_done step run_done"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("event order = %q, want %q", got, want)
	}
	for _, e := range log.Events {
		if e.TimeUnixNs == 0 {
			t.Errorf("event %s has no timestamp", e.Event)
		}
	}
}

func TestManifestTruncated(t *testing.T) {
	// A run that dies before Close leaves a headless log: readable, no
	// summary.
	var sb strings.Builder
	mw := NewManifestWriter(&sb, RunMeta{Tool: "lrsim"})
	mw.PhaseStart("p")
	log, err := ReadManifest(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if log.Summary != nil {
		t.Error("truncated manifest produced a summary")
	}
	if log.Meta() == nil {
		t.Error("truncated manifest lost its meta")
	}
}

func TestManifestVersionGuard(t *testing.T) {
	bad := `{"event":"run_start","time_unix_ns":1,"meta":{"manifest_version":999,"tool":"lrsim"}}`
	if _, err := ReadManifest(strings.NewReader(bad)); err == nil {
		t.Error("future manifest version accepted")
	}
	if _, err := ReadManifest(strings.NewReader("not json")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestManifestWriterConcurrent(t *testing.T) {
	// The writer is shared by the progress reporter goroutine and the main
	// run loop; concurrent events must serialize cleanly (-race checks the
	// locking, the decoder checks no interleaved JSON).
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	mw := NewManifestWriter(w, RunMeta{Tool: "t"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 3 {
				case 0:
					mw.Progress(ProgressSnapshot{Done: int64(i)})
				case 1:
					mw.Step(float64(i), g, "a", "s")
				default:
					name := "p" + string(rune('0'+g))
					mw.PhaseStart(name)
					mw.PhaseDone(name, "e", "r", nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := mw.Close(nil, nil); err != nil {
		t.Fatal(err)
	}
	log, err := ReadManifest(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("concurrent writes corrupted the stream: %v", err)
	}
	if log.Summary == nil {
		t.Fatal("summary missing")
	}
}

func TestManifestCloseIdempotentAndDropsLateEvents(t *testing.T) {
	var sb strings.Builder
	mw := NewManifestWriter(&sb, RunMeta{Tool: "t"})
	if err := mw.Close(nil, errors.New("interrupted")); err != nil {
		t.Fatal(err)
	}
	mw.Progress(ProgressSnapshot{}) // after Close: dropped
	if err := mw.Close(nil, nil); err != nil {
		t.Fatal(err)
	}
	log, err := ReadManifest(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 2 {
		t.Errorf("events after double close = %d, want 2", len(log.Events))
	}
	if log.Summary == nil || log.Summary.Err != "interrupted" {
		t.Errorf("summary = %+v", log.Summary)
	}
}

func TestInstrumentationInert(t *testing.T) {
	ins, err := Setup(Config{Tool: "lrsim"})
	if err != nil {
		t.Fatal(err)
	}
	if ins != nil {
		t.Fatal("empty config produced live instrumentation")
	}
	// All methods must be nil-receiver safe.
	if ins.Metrics() != nil {
		t.Error("nil instrumentation returned metrics")
	}
	ins.AddBudget(10)
	ins.PhaseStart("p")
	ins.PhaseDone("p", "", "", nil)
	if err := ins.Close(nil); err != nil {
		t.Error(err)
	}
}

func TestInstrumentationSinkValidation(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	if _, err := Setup(Config{Tool: "t", Manifest: filepath.Join(missing, "m.jsonl")}); err == nil {
		t.Error("unwritable manifest path accepted")
	}
	if _, err := Setup(Config{Tool: "t", MetricsOut: filepath.Join(missing, "m.json")}); err == nil {
		t.Error("unwritable metrics-out path accepted")
	}
	if _, err := Setup(Config{Tool: "t", Pprof: "bad addr:xyz"}); err == nil {
		t.Error("malformed pprof address accepted")
	}
}

func TestInstrumentationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	ins, err := Setup(Config{
		Tool:        "lrsim",
		Seed:        5,
		Options:     map[string]string{"seed": "5"},
		TotalTrials: 64,
		Manifest:    manifest,
		MetricsOut:  metrics,
		Pprof:       "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	ins.PhaseStart("stage")
	for i := 0; i < 64; i++ {
		ins.Metrics().TrialDone(i, 10, 0.0001, true, 4)
	}
	ins.PhaseDone("stage", "est", "64/64 trials", nil)
	if err := ins.Close(nil); err != nil {
		t.Fatal(err)
	}

	log, err := LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if log.Summary == nil || len(log.Summary.Phases) != 1 {
		t.Fatalf("summary = %+v", log.Summary)
	}
	if log.Summary.Metrics.Counters["sim.trials_completed"] != 64 {
		t.Errorf("manifest metrics = %+v", log.Summary.Metrics.Counters)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "sim.trials_completed") {
		t.Errorf("metrics-out missing counters:\n%s", data)
	}
}

// The manifest writer must keep satisfying the trace package's streaming
// Sink interface — the link is structural, so this is the only place the
// compiler checks it.
var _ trace.Sink = (*ManifestWriter)(nil)
