package obs

// Tests for the hardened HTTP server constructor (NewHTTPServer) and
// the /debug/metrics endpoint: the header-read timeout must actually
// sever slowloris clients, and concurrent metric writes must never
// yield an unparseable snapshot response.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPServerReadHeaderTimeout: a client that connects and drips its
// request header slower than ReadHeaderTimeout gets the connection
// closed, while a prompt client on the same server is served.
func TestHTTPServerReadHeaderTimeout(t *testing.T) {
	srv := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("NewHTTPServer left ReadHeaderTimeout unset (%v); slowloris hardening gone", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("NewHTTPServer left IdleTimeout unset (%v)", srv.IdleTimeout)
	}
	// Shrink the timeout so the test is fast; the constructor's default
	// is asserted above, the enforcement below.
	srv.ReadHeaderTimeout = 150 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	defer srv.Close()
	addr := ln.Addr().String()

	// The slow-header client: send half a request line, then stall past
	// the timeout. The server must close on us — the read fails instead
	// of hanging for the full stall.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	// The server must sever the connection shortly after the timeout —
	// either a bare close (read error) or a 408 then EOF. What it must
	// NOT do is keep waiting for the rest of the header: ReadAll returning
	// within the deadline proves the close happened.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	start := time.Now()
	data, err := io.ReadAll(conn)
	elapsed := time.Since(start)
	if err != nil && elapsed >= 5*time.Second {
		t.Fatalf("server did not close the slow-header connection (read waited %v: %v)", elapsed, err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("connection severed only after %v, want ~ReadHeaderTimeout (150ms)", elapsed)
	}
	if len(data) > 0 && !errorStatus(string(data)) {
		t.Fatalf("slow-header client got a real response %q, want an error status or a bare close", data)
	}

	// A well-behaved client is unaffected.
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("prompt client failed after slowloris was severed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("prompt client got %q, want ok", body)
	}
}

// TestDebugMetricsConsistentUnderWrites hammers a registry from writer
// goroutines while concurrently fetching /debug/metrics; every response
// must parse as a complete snapshot with non-decreasing counters.
func TestDebugMetricsConsistentUnderWrites(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test.events")
	hist := reg.Histogram("test.seconds", SecondsBounds...)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(DebugHandler(reg))
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/debug/metrics"

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ctr.Inc()
				hist.Observe(0.001)
			}
		}()
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	var last int64 = -1
	for i := 0; i < 25; i++ {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		var snap Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %d: unparseable snapshot under concurrent writes: %v", i, err)
		}
		got, ok := snap.Counters["test.events"]
		if !ok {
			t.Fatalf("GET %d: snapshot missing test.events: %+v", i, snap.Counters)
		}
		if got < last {
			t.Fatalf("GET %d: counter went backwards: %d < %d", i, got, last)
		}
		last = got
		if h, ok := snap.Histograms["test.seconds"]; ok && h.Count > 0 && len(h.Counts) == 0 {
			t.Fatalf("GET %d: histogram has count %d but no buckets", i, h.Count)
		}
	}
	if last <= 0 {
		t.Fatal("writers never advanced the counter; test is vacuous")
	}
}

// TestHTTPServerHeaderLimit: the 1 MiB header cap is set and oversized
// headers are refused with 431, not buffered without bound.
func TestHTTPServerHeaderLimit(t *testing.T) {
	srv := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	if srv.MaxHeaderBytes != 1<<20 {
		t.Fatalf("MaxHeaderBytes = %d, want %d", srv.MaxHeaderBytes, 1<<20)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "GET / HTTP/1.1\r\nHost: x\r\n")
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = 'a'
	}
	for i := 0; i < 32; i++ { // 2 MiB of header
		if _, err := fmt.Fprintf(conn, "X-Pad-%d: %s\r\n", i, big); err != nil {
			break // server already hung up mid-write: also a pass
		}
	}
	fmt.Fprint(conn, "\r\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err == nil && !contains431(line) {
		t.Fatalf("oversized header got %q, want 431 or a closed connection", line)
	}
}

func contains431(statusLine string) bool {
	return len(statusLine) >= 12 && statusLine[9:12] == "431"
}

// errorStatus reports a 4xx status line (the 408/400 the server may
// write when severing a timed-out header read).
func errorStatus(statusLine string) bool {
	return len(statusLine) >= 12 && statusLine[9] == '4'
}
