package obs

// SimMetrics is the bridge between the parallel Monte Carlo engine and the
// metrics registry: it implements the sim package's Metrics hook
// (structurally — neither package imports the other) and fans each engine
// event out to named instruments, all of them allocation-free on the
// per-trial path.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Default bucket layouts. Trial step counts and reach times are
// geometric (powers of two) because trial cost under adversarial policies
// is heavy-tailed; wall-times use decade buckets from 1µs to 10s.
var (
	StepBounds    = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
	SecondsBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	TimeBounds    = []float64{1, 2, 4, 8, 13, 16, 32, 63, 128, 256, 1024}
)

// SimMetrics receives the telemetry stream of one or more parallel runs
// and maintains the registry instruments behind the live progress display.
// All methods are safe for concurrent use from worker goroutines and
// perform no allocation — the engine may call them once per trial without
// perturbing the workload.
type SimMetrics struct {
	total atomic.Int64 // trial budget across all phases, for ETA
	start time.Time

	trials      *Counter // trials completed in this process (excludes restored)
	restored    *Counter // trials restored from a resume token
	reached     *Counter // completed trials that hit the target
	quarantined *Counter // panicking trials excluded from estimates
	stalled     *Counter // watchdog-abandoned trials excluded from estimates
	chunks      *Counter // completed chunks
	inflight    *Gauge   // chunks currently being executed
	checkpoints *Counter // checkpoint sink invocations that succeeded
	lastCkNs    atomic.Int64

	artRetries   *Counter // retried artifact writes
	artFallbacks *Counter // loads that fell back to an older generation
	artCorrupt   *Counter // artifact files that failed validation
	artFallbackG *Gauge   // generation the last fallback load came from

	steps     *Histogram // events per completed trial
	seconds   *Histogram // wall-clock seconds per completed trial
	reachTime *Histogram // ReachedAt of trials that hit the target
}

// NewSimMetrics registers the simulation instruments (sim.* names) in reg
// and returns the hook to hand to sim.ParallelOptions.Metrics. total is
// the overall trial budget the progress display measures ETA against; use
// AddBudget for multi-phase runs whose budget grows as phases are planned.
func NewSimMetrics(reg *Registry, total int) *SimMetrics {
	m := &SimMetrics{
		start:       time.Now(),
		trials:      reg.Counter("sim.trials_completed"),
		restored:    reg.Counter("sim.trials_restored"),
		reached:     reg.Counter("sim.trials_reached"),
		quarantined: reg.Counter("sim.trials_quarantined"),
		stalled:     reg.Counter("sim.trials_stalled"),
		chunks:      reg.Counter("sim.chunks_completed"),
		inflight:    reg.Gauge("sim.chunks_inflight"),
		checkpoints: reg.Counter("sim.checkpoints_saved"),

		artRetries:   reg.Counter("sim.artifact_retries"),
		artFallbacks: reg.Counter("sim.artifact_fallbacks"),
		artCorrupt:   reg.Counter("sim.artifacts_corrupt"),
		artFallbackG: reg.Gauge("sim.artifact_fallback_generation"),
		steps:        reg.Histogram("sim.trial_steps", StepBounds...),
		seconds:      reg.Histogram("sim.trial_seconds", SecondsBounds...),
		reachTime:    reg.Histogram("sim.reach_time", TimeBounds...),
	}
	m.total.Store(int64(total))
	return m
}

// AddBudget grows the total trial budget the ETA is computed against.
func (m *SimMetrics) AddBudget(trials int) { m.total.Add(int64(trials)) }

// TrialDone records one successfully completed trial: its step count, its
// wall-clock cost, and — when it reached the target — the reach time.
func (m *SimMetrics) TrialDone(trial, events int, seconds float64, reached bool, reachedAt float64) {
	m.trials.Inc()
	m.steps.Observe(float64(events))
	m.seconds.Observe(seconds)
	if reached {
		m.reached.Inc()
		m.reachTime.Observe(reachedAt)
	}
}

// TrialBatchDone records one committed chunk of trials at once — the
// batched form of TrialDone (sim's BatchMetrics extension, which the
// engine prefers when available): bucket counts and moment sums are
// accumulated locally and each instrument is touched once per chunk
// instead of once per trial. seconds is the chunk's total wall-clock
// cost; the per-trial seconds histogram receives the chunk mean for each
// trial, since batching removes per-trial clock reads by design.
func (m *SimMetrics) TrialBatchDone(trials, reached int, events []int64, reachTimes []float64, seconds float64) {
	if trials <= 0 {
		return
	}
	m.trials.Add(int64(trials))
	m.steps.ObserveIntBatch(events)
	m.seconds.ObserveN(seconds/float64(trials), int64(trials))
	if reached > 0 {
		m.reached.Add(int64(reached))
		m.reachTime.ObserveBatch(reachTimes)
	}
}

// TrialQuarantined records one panicking trial excluded from the estimate.
func (m *SimMetrics) TrialQuarantined(trial int) { m.quarantined.Inc() }

// TrialStalled records one trial abandoned by the per-trial watchdog and
// excluded from the estimate.
func (m *SimMetrics) TrialStalled(trial int) { m.stalled.Inc() }

// ArtifactRetried records one retried checkpoint/manifest write (the
// sim.ArtifactMetrics hook, matched structurally like sim.Metrics).
func (m *SimMetrics) ArtifactRetried() { m.artRetries.Inc() }

// ArtifactFallback records a load that fell back to an older artifact
// generation, and remembers which one on a gauge.
func (m *SimMetrics) ArtifactFallback(generation int) {
	m.artFallbacks.Inc()
	m.artFallbackG.Set(int64(generation))
}

// ArtifactCorrupt records one artifact file that failed validation
// (checksum mismatch, truncation, garbage).
func (m *SimMetrics) ArtifactCorrupt() { m.artCorrupt.Inc() }

// ChunkActive moves the in-flight chunk gauge (+1 on claim, -1 on
// completion or abandonment).
func (m *SimMetrics) ChunkActive(delta int) { m.inflight.Add(int64(delta)) }

// ChunkDone records one committed chunk of the given trial count.
func (m *SimMetrics) ChunkDone(chunk, trials int) { m.chunks.Inc() }

// TrialsRestored records trials restored from a resume token rather than
// re-run.
func (m *SimMetrics) TrialsRestored(n int) { m.restored.Add(int64(n)) }

// CheckpointSaved records one successful checkpoint-sink invocation and
// stamps the checkpoint age clock.
func (m *SimMetrics) CheckpointSaved() {
	m.checkpoints.Inc()
	m.lastCkNs.Store(time.Now().UnixNano())
}

// ProgressSnapshot is one point-in-time reading of a sweep: what a
// progress line renders and what a manifest "progress" event records.
// Durations are nanoseconds for stable JSON.
type ProgressSnapshot struct {
	ElapsedNs   int64 `json:"elapsed_ns"`
	Done        int64 `json:"trials_done"`
	Restored    int64 `json:"trials_restored,omitempty"`
	Total       int64 `json:"trials_total"`
	Reached     int64 `json:"trials_reached"`
	Quarantined int64 `json:"trials_quarantined,omitempty"`
	Stalled     int64 `json:"trials_stalled,omitempty"`
	InFlight    int64 `json:"chunks_inflight"`
	// TrialsPerSec is the mean completion rate since the run started.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// ETANs estimates the remaining wall-clock at the current rate; 0
	// when unknown (no completed trials yet, or budget already covered).
	ETANs int64 `json:"eta_ns,omitempty"`
	// ReachFrac ± ReachHalf is the running reach-probability estimate
	// with its 95% Wilson half-width, over the trials completed so far in
	// this process (restored trials carry no per-trial outcomes).
	ReachFrac float64 `json:"reach_frac"`
	ReachHalf float64 `json:"reach_half"`
	// MeanReach ± MeanReachHalf is the running mean reach time with its
	// 95% normal-approximation half-width (stats.MeanCIFromMoments over
	// the lock-free moment sums).
	MeanReach     float64 `json:"mean_reach_time"`
	MeanReachHalf float64 `json:"mean_reach_half"`
	// CheckpointAgeNs is the time since the last persisted checkpoint;
	// -1 when no checkpoint has been saved.
	CheckpointAgeNs int64 `json:"checkpoint_age_ns"`
}

// Progress assembles a snapshot from the current instrument values. It is
// a cold-path read: call it from a reporter tick, not per trial.
func (m *SimMetrics) Progress() ProgressSnapshot {
	now := time.Now()
	elapsed := now.Sub(m.start)
	s := ProgressSnapshot{
		ElapsedNs:       int64(elapsed),
		Done:            m.trials.Value(),
		Restored:        m.restored.Value(),
		Total:           m.total.Load(),
		Reached:         m.reached.Value(),
		Quarantined:     m.quarantined.Value(),
		Stalled:         m.stalled.Value(),
		InFlight:        m.inflight.Value(),
		CheckpointAgeNs: -1,
	}
	if ck := m.lastCkNs.Load(); ck > 0 {
		s.CheckpointAgeNs = now.UnixNano() - ck
	}
	if secs := elapsed.Seconds(); secs > 0 && s.Done > 0 {
		s.TrialsPerSec = float64(s.Done) / secs
		if remaining := s.Total - s.Done - s.Restored; remaining > 0 {
			s.ETANs = int64(float64(remaining) / s.TrialsPerSec * float64(time.Second))
		}
	}
	p := stats.Proportion{Successes: int(s.Reached), Trials: int(s.Done)}
	if est, err := p.Estimate(); err == nil {
		s.ReachFrac = est
		s.ReachHalf, _ = p.WilsonHalfWidth(1.96)
	}
	rt := m.reachTime.Snapshot()
	if mean, half, err := stats.MeanCIFromMoments(rt.Count, rt.Sum, rt.SumSq, 1.96); err == nil || rt.Count > 0 {
		s.MeanReach, s.MeanReachHalf = mean, half
	}
	return s
}

// String renders the snapshot as the one-line form the -progress flag
// emits.
func (s ProgressSnapshot) String() string {
	var b strings.Builder
	covered := s.Done + s.Restored
	fmt.Fprintf(&b, "%d/%d trials", covered, s.Total)
	if s.Total > 0 {
		fmt.Fprintf(&b, " (%.1f%%)", 100*float64(covered)/float64(s.Total))
	}
	if s.Restored > 0 {
		fmt.Fprintf(&b, " [%d restored]", s.Restored)
	}
	fmt.Fprintf(&b, " | %.0f trials/s", s.TrialsPerSec)
	if s.ETANs > 0 {
		fmt.Fprintf(&b, " | ETA %v", time.Duration(s.ETANs).Round(time.Second))
	}
	if s.Done > 0 {
		fmt.Fprintf(&b, " | reached %.4f ±%.4f", s.ReachFrac, s.ReachHalf)
	}
	if s.Reached > 0 {
		fmt.Fprintf(&b, " | mean t %.2f ±%.2f", s.MeanReach, s.MeanReachHalf)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(&b, " | quarantined %d", s.Quarantined)
	}
	if s.Stalled > 0 {
		fmt.Fprintf(&b, " | stalled %d", s.Stalled)
	}
	fmt.Fprintf(&b, " | in-flight %d", s.InFlight)
	if s.CheckpointAgeNs >= 0 {
		fmt.Fprintf(&b, " | checkpoint %v ago", time.Duration(s.CheckpointAgeNs).Round(100*time.Millisecond))
	}
	return b.String()
}
