package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressReporter periodically renders a SimMetrics snapshot as one line
// on a writer (the -progress flag), and optionally tees each snapshot into
// a run manifest as a "progress" event — so a sweep's trajectory is both
// watchable live and preserved in the artifact.
type ProgressReporter struct {
	w        io.Writer
	interval time.Duration
	metrics  *SimMetrics
	manifest *ManifestWriter
	render   func() string

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewProgressReporter returns a reporter emitting to w every interval.
// manifest may be nil; w may be nil to record progress events only.
func NewProgressReporter(w io.Writer, interval time.Duration, metrics *SimMetrics, manifest *ManifestWriter) *ProgressReporter {
	return &ProgressReporter{w: w, interval: interval, metrics: metrics, manifest: manifest}
}

// NewFuncReporter returns a reporter that renders each tick from an
// arbitrary snapshot function instead of a SimMetrics — the same
// start/stop lifecycle (including the closing tick on Stop) for
// progress sources that are not trial counters, like a coordinator's
// chunk frontier. render is called once per tick, from the reporter
// goroutine.
func NewFuncReporter(w io.Writer, interval time.Duration, render func() string) *ProgressReporter {
	return &ProgressReporter{w: w, interval: interval, render: render}
}

// Start launches the reporting goroutine. Starting a running reporter is a
// no-op.
func (p *ProgressReporter) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

func (p *ProgressReporter) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.report()
		case <-stop:
			return
		}
	}
}

func (p *ProgressReporter) report() {
	if p.render != nil {
		if p.w != nil {
			fmt.Fprintf(p.w, "progress: %s\n", p.render())
		}
		return
	}
	s := p.metrics.Progress()
	if p.w != nil {
		fmt.Fprintf(p.w, "progress: %s\n", s)
	}
	if p.manifest != nil {
		p.manifest.Progress(s)
	}
}

// Stop halts the goroutine and emits one final snapshot, so even a run
// shorter than the interval leaves a closing progress line. Stopping a
// stopped (or never started) reporter is a no-op.
func (p *ProgressReporter) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	p.report()
}
