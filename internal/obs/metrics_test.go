package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from 8 goroutines — the
// satellite -race check: concurrent increments must lose nothing, and the
// final snapshot must be exact once the writers are quiescent.
func TestRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10_000
	)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Get-or-create races on purpose: every goroutine resolves the
			// same names.
			c := reg.Counter("trials")
			ga := reg.Gauge("inflight")
			h := reg.Histogram("steps", 1, 10, 100)
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i % 150))
				ga.Add(-1)
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["trials"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Gauges["inflight"]; got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced adds", got)
	}
	h := snap.Histograms["steps"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d (quiescent snapshot must be consistent)", bucketSum, h.Count)
	}
}

// TestSnapshotMidFlight takes snapshots while writers are running:
// counters must be monotone between snapshots and never exceed the final
// total.
func TestSnapshotMidFlight(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	const total = 50_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			c.Inc()
		}
	}()
	var last int64
	for {
		select {
		case <-done:
			if got := reg.Snapshot().Counters["n"]; got != total {
				t.Errorf("final counter = %d, want %d", got, total)
			}
			return
		default:
			got := reg.Snapshot().Counters["n"]
			if got < last || got > total {
				t.Fatalf("snapshot went backwards or overshot: %d after %d", got, last)
			}
			last = got
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	// Upper-inclusive buckets: (-inf,1], (1,2], (2,4], (4,+inf).
	cases := []struct {
		x      float64
		bucket int
	}{
		{0, 0}, {1, 0}, // exactly on a bound lands in that bucket
		{1.0000001, 1}, {2, 1},
		{3, 2}, {4, 2},
		{4.5, 3}, {math.Inf(1), 3}, // overflow
		{-5, 0},
	}
	for _, c := range cases {
		h.Observe(c.x)
	}
	snap := h.Snapshot()
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], want[i], snap.Counts)
		}
	}
	if snap.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", snap.Count, len(cases))
	}
}

// TestHistogramBucketHelper pins the boundary semantics of the single
// bucket classifier every observation path shares: exactly-on-a-bound is
// upper-inclusive, and Observe, ObserveN, ObserveBatch and
// ObserveIntBatch all classify through it identically.
func TestHistogramBucketHelper(t *testing.T) {
	bounds := []float64{-1, 0, 1, 2, 4}
	cases := []struct {
		x    float64
		want int
	}{
		{math.Inf(-1), 0}, {-2, 0}, {-1, 0}, // below and on the first bound
		{-0.5, 1}, {0, 1}, // zero is a bound: lands in its own bucket
		{0.5, 2}, {1, 2},
		{1.5, 3}, {2, 3},
		{3, 4}, {4, 4},
		{4.000001, 5}, {100, 5}, {math.Inf(1), 5}, // overflow bucket
	}
	h := NewHistogram(bounds...)
	for _, c := range cases {
		if got := h.bucket(c.x); got != c.want {
			t.Errorf("bucket(%g) = %d, want %d", c.x, got, c.want)
		}
	}
	// Integer-valued boundary samples must land identically through all
	// four observation paths.
	ints := []int64{-1, 0, 1, 2, 4, 5}
	xs := make([]float64, len(ints))
	for i, v := range ints {
		xs[i] = float64(v)
	}
	one, n, batch, intBatch := NewHistogram(bounds...), NewHistogram(bounds...), NewHistogram(bounds...), NewHistogram(bounds...)
	for _, x := range xs {
		one.Observe(x)
		n.ObserveN(x, 1)
	}
	batch.ObserveBatch(xs)
	intBatch.ObserveIntBatch(ints)
	ref := one.Snapshot().Counts
	for name, h := range map[string]*Histogram{"ObserveN": n, "ObserveBatch": batch, "ObserveIntBatch": intBatch} {
		if got := h.Snapshot().Counts; !reflect.DeepEqual(got, ref) {
			t.Errorf("%s counts = %v, want %v (Observe)", name, got, ref)
		}
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram(10)
	for _, x := range []float64{1, 2, 3, 4} {
		h.Observe(x)
	}
	s := h.Snapshot()
	if s.Sum != 10 || s.SumSq != 30 {
		t.Errorf("sum, sumsq = %g, %g; want 10, 30", s.Sum, s.SumSq)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for name, mk := range map[string]func(){
		"empty":    func() { NewHistogram() },
		"unsorted": func() { NewHistogram(3, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			mk()
		}()
	}
}

func TestRegistryHandlerAndExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler emitted invalid JSON: %v", err)
	}
	if snap.Counters["hits"] != 3 {
		t.Errorf("handler snapshot = %+v", snap)
	}

	// Publishing twice must not panic, and the latest registry must win.
	reg.PublishExpvar("test_metrics")
	reg2 := NewRegistry()
	reg2.Counter("hits").Add(9)
	reg2.PublishExpvar("test_metrics")
	v := expvar.Get("test_metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), `"hits":9`) {
		t.Errorf("expvar shows stale registry: %s", v.String())
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.trials_completed").Add(7)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for path, want := range map[string]string{
		"/debug/metrics": `"sim.trials_completed": 7`,
		"/debug/pprof/":  "goroutine",
		"/debug/vars":    "memstats",
	} {
		resp, err := http.Get("http://" + d.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}

	if _, err := ServeDebug("this is not an address", reg); err == nil {
		t.Error("malformed address accepted")
	}
}

func TestSimMetricsProgress(t *testing.T) {
	reg := NewRegistry()
	m := NewSimMetrics(reg, 100)
	for i := 0; i < 40; i++ {
		m.TrialDone(i, 10+i, 0.001, i%2 == 0, float64(5+i%3))
	}
	m.TrialsRestored(20)
	m.TrialQuarantined(99)
	m.ChunkActive(1)
	m.CheckpointSaved()

	s := m.Progress()
	if s.Done != 40 || s.Restored != 20 || s.Total != 100 {
		t.Errorf("done/restored/total = %d/%d/%d", s.Done, s.Restored, s.Total)
	}
	if s.Reached != 20 {
		t.Errorf("reached = %d, want 20", s.Reached)
	}
	if s.ReachFrac != 0.5 || s.ReachHalf <= 0 {
		t.Errorf("reach estimate = %g ±%g, want 0.5 ± >0", s.ReachFrac, s.ReachHalf)
	}
	if s.MeanReach < 5 || s.MeanReach > 7 {
		t.Errorf("mean reach time = %g, want within [5, 7]", s.MeanReach)
	}
	if s.Quarantined != 1 || s.InFlight != 1 {
		t.Errorf("quarantined/inflight = %d/%d", s.Quarantined, s.InFlight)
	}
	if s.CheckpointAgeNs < 0 {
		t.Errorf("checkpoint age = %d, want >= 0 after a save", s.CheckpointAgeNs)
	}
	if s.TrialsPerSec <= 0 {
		t.Errorf("rate = %g, want > 0", s.TrialsPerSec)
	}
	if s.ETANs <= 0 {
		t.Errorf("ETA = %d, want > 0 with 40 trials remaining", s.ETANs)
	}

	line := s.String()
	for _, want := range []string{"60/100 trials", "restored", "reached 0.5000", "quarantined 1", "in-flight 1", "checkpoint"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %s", want, line)
		}
	}

	// No checkpoint ever: age must render as absent, not a bogus ago.
	s2 := NewSimMetrics(NewRegistry(), 10).Progress()
	if s2.CheckpointAgeNs != -1 {
		t.Errorf("checkpoint age with no save = %d, want -1", s2.CheckpointAgeNs)
	}
	if strings.Contains(s2.String(), "checkpoint") {
		t.Errorf("progress line shows checkpoint without one: %s", s2.String())
	}
}

// TestSimMetricsHotPathAllocs proves the enabled metrics path allocates
// nothing per trial — together with the engine-side nil check this is the
// zero-overhead-when-disabled guarantee.
func TestSimMetricsHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	reg := NewRegistry()
	m := NewSimMetrics(reg, 1000)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		m.TrialDone(i, 37, 0.0005, i%2 == 0, 12.5)
		m.ChunkActive(1)
		m.ChunkDone(i/64, 64)
		m.ChunkActive(-1)
		m.TrialQuarantined(i)
		m.TrialsRestored(1)
		i++
	})
	if allocs != 0 {
		t.Errorf("hot-path metrics allocate %.1f allocs/op, want 0", allocs)
	}
}

func TestProgressReporter(t *testing.T) {
	reg := NewRegistry()
	m := NewSimMetrics(reg, 10)
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})

	r := NewProgressReporter(w, 10*time.Millisecond, m, nil)
	r.Start()
	r.Start() // double start is a no-op
	for i := 0; i < 10; i++ {
		m.TrialDone(i, 5, 0.0001, true, 3)
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // double stop is a no-op

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "progress: ") {
		t.Fatalf("no progress lines emitted:\n%s", out)
	}
	// Stop flushes a final sample, so the last line must show all trials.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if got := lines[len(lines)-1]; !strings.Contains(got, "10/10 trials") {
		t.Errorf("final line = %q, want 10/10 trials", got)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestVersionNonEmpty(t *testing.T) {
	if v := Version(); v == "" {
		t.Error("Version() returned empty string")
	}
}

func TestReplayArgs(t *testing.T) {
	opts := map[string]string{
		"trials":   "100",
		"seed":     "3",
		"manifest": "run.jsonl",
		"progress": "1s",
	}
	got := ReplayArgs(opts, "manifest", "progress")
	// Single-token form: "-until-c true" would end flag parsing for a
	// boolean flag, "-until-c=true" never does.
	want := []string{"-seed=3", "-trials=100"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ReplayArgs = %v, want %v", got, want)
	}
}
