package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler is the live-profiling surface the -pprof flag serves:
//
//	/debug/pprof/...  net/http/pprof (CPU, heap, goroutine, trace, ...)
//	/debug/vars       expvar (cmdline, memstats, published registries)
//	/debug/metrics    the registry snapshot as JSON
//
// A private mux (rather than http.DefaultServeMux) keeps repeated
// in-process runs from fighting over global handler registration.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/debug/metrics", reg.Handler())
	}
	return mux
}

// NewHTTPServer returns an http.Server with the handler installed and
// conservative protocol limits set — the shared constructor for every
// listener this repo exposes (the -pprof debug endpoint, the fabric
// coordinator and workers). A bare &http.Server{} has no header-read or
// idle timeout, so one slowloris client (drip-feeding header bytes, or
// parking idle keep-alive connections) can pin goroutines and file
// descriptors forever once the port is reachable beyond localhost.
// Read/write timeouts stay unset on purpose: long-lived downloads
// (pprof CPU profiles, large result uploads) are legitimate here, and
// the slow-header and idle cases are what the attack needs.
//
// Optional middleware wraps the handler innermost-last: the first
// element of mw sees the request first. The chaos suite uses this to
// inject server-side network faults (fault.Middleware) in front of the
// coordinator without the coordinator knowing.
func NewHTTPServer(h http.Handler, mw ...func(http.Handler) http.Handler) *http.Server {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// DebugServer is a running debug endpoint; Addr is the bound address
// (useful with ":0").
type DebugServer struct {
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug binds addr, publishes the registry under the expvar name
// "sim_metrics", and serves DebugHandler in a background goroutine. A bad
// or busy address surfaces here, synchronously — the CLIs use that as
// up-front -pprof validation.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: -pprof listen %s: %w", addr, err)
	}
	if reg != nil {
		reg.PublishExpvar("sim_metrics")
	}
	srv := NewHTTPServer(DebugHandler(reg))
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
