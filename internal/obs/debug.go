package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the live-profiling surface the -pprof flag serves:
//
//	/debug/pprof/...  net/http/pprof (CPU, heap, goroutine, trace, ...)
//	/debug/vars       expvar (cmdline, memstats, published registries)
//	/debug/metrics    the registry snapshot as JSON
//
// A private mux (rather than http.DefaultServeMux) keeps repeated
// in-process runs from fighting over global handler registration.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/debug/metrics", reg.Handler())
	}
	return mux
}

// DebugServer is a running debug endpoint; Addr is the bound address
// (useful with ":0").
type DebugServer struct {
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug binds addr, publishes the registry under the expvar name
// "sim_metrics", and serves DebugHandler in a background goroutine. A bad
// or busy address surfaces here, synchronously — the CLIs use that as
// up-front -pprof validation.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: -pprof listen %s: %w", addr, err)
	}
	if reg != nil {
		reg.PublishExpvar("sim_metrics")
	}
	srv := &http.Server{Handler: DebugHandler(reg)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
