package obs

// FabricMetrics is the observability hook of the distributed trial
// fabric (internal/fabric): it implements fabric's Metrics interface
// structurally — neither package imports the other, mirroring the
// sim.Metrics bridge — and fans each coordinator event out to named
// registry instruments. Everything here is a cold-path call (per lease,
// per result, per sweep — never per trial), so plain counters suffice.

import "repro/internal/fault"

// FabricMetrics maintains the fabric.* instruments of one coordinator.
type FabricMetrics struct {
	leasesGranted    *Counter // leases handed to workers
	leasesExpired    *Counter // leases whose heartbeat lapsed
	chunksReassigned *Counter // chunks returned to pending by expiry
	resultsAccepted  *Counter // result deliveries with >= 1 fresh chunk
	chunksAccepted   *Counter // chunk records merged into the frontier
	chunksDuplicate  *Counter // duplicate/late chunk records dropped
	resultsRejected  *Counter // results refused (CRC, identity, bounds)
	heartbeats       *Counter // heartbeats received
	workersLive      *Gauge   // workers seen within the liveness window

	rpcs      *Counter   // fabric RPCs served, all routes
	leaseWait *Histogram // chunk pending-to-grant wait, seconds
	rpcTime   *Histogram // RPC service time, seconds
	chunkTime *Histogram // per-chunk grant-to-result turnaround, seconds

	hedges      *Counter // hedged (speculative duplicate) leases issued
	quarantined *Counter // workers blacklisted for misbehavior
	shed        *Counter // RPCs refused with 429 under admission control
}

// NewFabricMetrics registers the fabric instruments in reg and returns
// the hook to hand to the coordinator.
func NewFabricMetrics(reg *Registry) *FabricMetrics {
	return &FabricMetrics{
		leasesGranted:    reg.Counter("fabric.leases_granted"),
		leasesExpired:    reg.Counter("fabric.leases_expired"),
		chunksReassigned: reg.Counter("fabric.chunks_reassigned"),
		resultsAccepted:  reg.Counter("fabric.results_accepted"),
		chunksAccepted:   reg.Counter("fabric.chunks_accepted"),
		chunksDuplicate:  reg.Counter("fabric.chunks_duplicate_dropped"),
		resultsRejected:  reg.Counter("fabric.results_rejected"),
		heartbeats:       reg.Counter("fabric.heartbeats"),
		workersLive:      reg.Gauge("fabric.workers_live"),
		rpcs:             reg.Counter("fabric.rpcs_served"),
		leaseWait:        reg.Histogram("fabric.lease_wait_seconds", SecondsBounds...),
		rpcTime:          reg.Histogram("fabric.rpc_seconds", SecondsBounds...),
		chunkTime:        reg.Histogram("fabric.chunk_seconds", SecondsBounds...),
		hedges:           reg.Counter("fabric.hedges_issued"),
		quarantined:      reg.Counter("fabric.workers_quarantined"),
		shed:             reg.Counter("fabric.rpcs_shed"),
	}
}

// LeaseGranted records one lease of the given chunk count handed out.
func (m *FabricMetrics) LeaseGranted(chunks int) { m.leasesGranted.Inc() }

// LeaseExpired records one lease whose heartbeat lapsed, returning the
// given number of not-yet-done chunks to the pending pool.
func (m *FabricMetrics) LeaseExpired(chunks int) {
	m.leasesExpired.Inc()
	m.chunksReassigned.Add(int64(chunks))
}

// ResultAccepted records one result delivery that contributed fresh
// chunks to the merge frontier.
func (m *FabricMetrics) ResultAccepted(chunks int) {
	m.resultsAccepted.Inc()
	m.chunksAccepted.Add(int64(chunks))
}

// DuplicateChunks records chunk records dropped because an earlier
// valid result already covered them (late redelivery, or a
// reassigned-then-returned lease).
func (m *FabricMetrics) DuplicateChunks(n int) { m.chunksDuplicate.Add(int64(n)) }

// ResultRejected records one result delivery refused outright —
// checksum mismatch, job-identity mismatch, or out-of-range chunks.
func (m *FabricMetrics) ResultRejected() { m.resultsRejected.Inc() }

// HeartbeatSeen records one worker heartbeat.
func (m *FabricMetrics) HeartbeatSeen() { m.heartbeats.Inc() }

// WorkersLive sets the worker-liveness gauge.
func (m *FabricMetrics) WorkersLive(n int) { m.workersLive.Set(int64(n)) }

// LeaseWait records how long one chunk sat pending before being
// granted — the queueing delay a straggler analysis attributes to
// coordinator-side backlog rather than worker-side compute.
func (m *FabricMetrics) LeaseWait(seconds float64) { m.leaseWait.Observe(seconds) }

// RPCServed records one fabric RPC handled. The route is folded into
// the shared service-time histogram (the registry is label-free); the
// per-route split lives in the trace, not the metrics.
func (m *FabricMetrics) RPCServed(route string, seconds float64) {
	m.rpcs.Inc()
	m.rpcTime.Observe(seconds)
}

// ChunkDuration records the mean per-chunk grant-to-result turnaround
// of one settled lease, weighted by its chunk count.
func (m *FabricMetrics) ChunkDuration(seconds float64, chunks int) {
	m.chunkTime.ObserveN(seconds, int64(chunks))
}

// HedgeIssued records one hedged lease: a speculative duplicate of a
// straggling lease's range, granted before the original expired.
func (m *FabricMetrics) HedgeIssued() { m.hedges.Inc() }

// WorkerQuarantined records one worker blacklisted (corrupt uploads or
// a health score below the floor).
func (m *FabricMetrics) WorkerQuarantined() { m.quarantined.Inc() }

// RPCShed records one RPC refused with 429 + Retry-After because the
// coordinator was at its in-flight cap.
func (m *FabricMetrics) RPCShed() { m.shed.Inc() }

// BreakerGauge returns a fault.Breaker OnChange hook mirroring the new
// state into the "fabric.breaker_state" gauge (0 closed, 1 open, 2
// half-open) — the worker-side view of coordinator reachability.
func BreakerGauge(reg *Registry) func(from, to fault.BreakerState) {
	g := reg.Gauge("fabric.breaker_state")
	return func(_, to fault.BreakerState) { g.Set(int64(to)) }
}
