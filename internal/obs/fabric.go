package obs

// FabricMetrics is the observability hook of the distributed trial
// fabric (internal/fabric): it implements fabric's Metrics interface
// structurally — neither package imports the other, mirroring the
// sim.Metrics bridge — and fans each coordinator event out to named
// registry instruments. Everything here is a cold-path call (per lease,
// per result, per sweep — never per trial), so plain counters suffice.

// FabricMetrics maintains the fabric.* instruments of one coordinator.
type FabricMetrics struct {
	leasesGranted    *Counter // leases handed to workers
	leasesExpired    *Counter // leases whose heartbeat lapsed
	chunksReassigned *Counter // chunks returned to pending by expiry
	resultsAccepted  *Counter // result deliveries with >= 1 fresh chunk
	chunksAccepted   *Counter // chunk records merged into the frontier
	chunksDuplicate  *Counter // duplicate/late chunk records dropped
	resultsRejected  *Counter // results refused (CRC, identity, bounds)
	heartbeats       *Counter // heartbeats received
	workersLive      *Gauge   // workers seen within the liveness window
}

// NewFabricMetrics registers the fabric instruments in reg and returns
// the hook to hand to the coordinator.
func NewFabricMetrics(reg *Registry) *FabricMetrics {
	return &FabricMetrics{
		leasesGranted:    reg.Counter("fabric.leases_granted"),
		leasesExpired:    reg.Counter("fabric.leases_expired"),
		chunksReassigned: reg.Counter("fabric.chunks_reassigned"),
		resultsAccepted:  reg.Counter("fabric.results_accepted"),
		chunksAccepted:   reg.Counter("fabric.chunks_accepted"),
		chunksDuplicate:  reg.Counter("fabric.chunks_duplicate_dropped"),
		resultsRejected:  reg.Counter("fabric.results_rejected"),
		heartbeats:       reg.Counter("fabric.heartbeats"),
		workersLive:      reg.Gauge("fabric.workers_live"),
	}
}

// LeaseGranted records one lease of the given chunk count handed out.
func (m *FabricMetrics) LeaseGranted(chunks int) { m.leasesGranted.Inc() }

// LeaseExpired records one lease whose heartbeat lapsed, returning the
// given number of not-yet-done chunks to the pending pool.
func (m *FabricMetrics) LeaseExpired(chunks int) {
	m.leasesExpired.Inc()
	m.chunksReassigned.Add(int64(chunks))
}

// ResultAccepted records one result delivery that contributed fresh
// chunks to the merge frontier.
func (m *FabricMetrics) ResultAccepted(chunks int) {
	m.resultsAccepted.Inc()
	m.chunksAccepted.Add(int64(chunks))
}

// DuplicateChunks records chunk records dropped because an earlier
// valid result already covered them (late redelivery, or a
// reassigned-then-returned lease).
func (m *FabricMetrics) DuplicateChunks(n int) { m.chunksDuplicate.Add(int64(n)) }

// ResultRejected records one result delivery refused outright —
// checksum mismatch, job-identity mismatch, or out-of-range chunks.
func (m *FabricMetrics) ResultRejected() { m.resultsRejected.Inc() }

// HeartbeatSeen records one worker heartbeat.
func (m *FabricMetrics) HeartbeatSeen() { m.heartbeats.Inc() }

// WorkersLive sets the worker-liveness gauge.
func (m *FabricMetrics) WorkersLive(n int) { m.workersLive.Set(int64(n)) }
