// Package span is the repo's distributed tracing layer: a lightweight,
// allocation-conscious Tracer/Span pair whose finished spans stream to
// JSONL in the run-manifest event schema (obs.Event with the "span"
// kind), plus the analysis that turns a pile of per-process trace files
// into one causally-ordered timeline (see timeline.go and cmd/simtrace).
//
// Design rules:
//
//   - Disabled tracing is one nil check. A nil *Tracer starts nil
//     *Spans, and every Span method no-ops on a nil receiver, so
//     instrumented code calls tracer.Start(...)/sp.End(...)
//     unconditionally and pays nothing when the -trace-out flag is off.
//     The engine-facing chunk hook (ChunkSpans) is gated the same way:
//     sim.ParallelOptions.SpanHooks stays a nil interface unless a
//     tracer exists.
//
//   - Spans are cold-path. One span per lease, chunk, RPC or merge —
//     never per trial. The per-trial hot loop is segmented for
//     profilers by pprof labels (ParallelOptions.PprofLabels) instead,
//     which cost one goroutine-label swap per worker goroutine.
//
//   - Time flows through fault.Clock. Wall timestamps come from the
//     injected clock, so tests drive a FakeClock and get bit-identical
//     trace files; durations additionally use Go's monotonic reading
//     when the clock is the wall clock, so spans measure elapsed time
//     even across wall-clock steps.
//
//   - IDs are deterministic. A span's ID is "<service>-<seq>" from a
//     per-tracer counter; services (the coordinator, each worker) are
//     unique per process, so merged trace files never collide and a
//     fixed scenario yields stable IDs.
//
// Trace context crosses the fabric's HTTP/JSON RPCs in two headers:
// X-Trace-Id carries the job's trace and X-Parent-Span the causal
// parent (the coordinator's lease span on a grant; the worker's lease
// span on heartbeat/result uploads). Inject/Extract are the only two
// functions either side needs.
package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Trace-context propagation headers (see Inject/Extract).
const (
	HeaderTraceID    = "X-Trace-Id"
	HeaderParentSpan = "X-Parent-Span"
)

// SpanContext names a span for propagation: the trace it belongs to and
// its span ID, the pair a child on the other side of an RPC needs to
// parent under it. The zero value means "no parent" (a root span).
type SpanContext struct {
	Trace string
	Span  string
}

// Inject writes sc into HTTP headers (request headers on the client
// side, response headers on the server side — the fabric uses both
// directions). Empty fields are omitted.
func Inject(sc SpanContext, h http.Header) {
	if sc.Trace != "" {
		h.Set(HeaderTraceID, sc.Trace)
	}
	if sc.Span != "" {
		h.Set(HeaderParentSpan, sc.Span)
	}
}

// Extract reads a SpanContext from HTTP headers; absent headers yield
// empty fields (a root span on this side).
func Extract(h http.Header) SpanContext {
	return SpanContext{Trace: h.Get(HeaderTraceID), Span: h.Get(HeaderParentSpan)}
}

// Attr is one typed key/value attribute on a span. Construct with Str,
// Int, Float or Bool; it marshals as {"k":key,"v":value} and preserves
// the JSON type. Attributes parsed back from a trace file report
// numbers through Float64/Int64 (JSON numbers decode as float64).
type Attr struct {
	Key string

	kind attrKind
	str  string
	num  int64
	flt  float64
}

type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// Str returns a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, kind: attrString, str: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, kind: attrInt, num: int64(v)} }

// Int64 returns an integer attribute from an int64.
func Int64(k string, v int64) Attr { return Attr{Key: k, kind: attrInt, num: v} }

// Float returns a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: attrFloat, flt: v} }

// Bool returns a boolean attribute (marshaled as 0/1 through Int64 on
// read-back; stored as true/false JSON).
func Bool(k string, v bool) Attr {
	n := int64(0)
	if v {
		n = 1
	}
	return Attr{Key: k, kind: attrBool, num: n}
}

// Value returns the attribute's value as the natural Go type.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.num
	case attrFloat:
		return a.flt
	case attrBool:
		return a.num != 0
	default:
		return a.str
	}
}

// Str64 returns the string value ("" for non-string attributes).
func (a Attr) Str64() string { return a.str }

// Int64Value returns the value as an int64 (floats truncate; strings
// are 0) — the accessor the timeline analysis uses for chunk indices.
func (a Attr) Int64Value() int64 {
	if a.kind == attrFloat {
		return int64(a.flt)
	}
	return a.num
}

// Float64 returns the value as a float64 (strings are 0).
func (a Attr) Float64() float64 {
	if a.kind == attrFloat {
		return a.flt
	}
	return float64(a.num)
}

type attrJSON struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// MarshalJSON implements json.Marshaler as {"k":key,"v":value}.
func (a Attr) MarshalJSON() ([]byte, error) {
	v, err := json.Marshal(a.Value())
	if err != nil {
		return nil, err
	}
	return json.Marshal(attrJSON{K: a.Key, V: v})
}

// UnmarshalJSON implements json.Unmarshaler: strings, booleans and
// numbers come back typed (all JSON numbers decode as float unless they
// parse exactly as int64).
func (a *Attr) UnmarshalJSON(data []byte) error {
	var aj attrJSON
	if err := json.Unmarshal(data, &aj); err != nil {
		return err
	}
	a.Key = aj.K
	var n int64
	if err := json.Unmarshal(aj.V, &n); err == nil {
		*a = Attr{Key: aj.K, kind: attrInt, num: n}
		return nil
	}
	var f float64
	if err := json.Unmarshal(aj.V, &f); err == nil {
		*a = Attr{Key: aj.K, kind: attrFloat, flt: f}
		return nil
	}
	var b bool
	if err := json.Unmarshal(aj.V, &b); err == nil {
		*a = Bool(aj.K, b)
		return nil
	}
	var s string
	if err := json.Unmarshal(aj.V, &s); err != nil {
		return fmt.Errorf("span: attribute %q has unsupported value %s", aj.K, aj.V)
	}
	*a = Str(aj.K, s)
	return nil
}

// Record is one finished span as it appears on disk. Wall time anchors
// the span across processes (StartUnixNs); MonoNs orders spans within a
// process even when the wall clock is frozen (a FakeClock) or steps;
// DurNs is measured with the monotonic reading where available.
type Record struct {
	Trace   string `json:"trace"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Service string `json:"svc,omitempty"`
	// StartUnixNs is the wall-clock start; MonoNs is nanoseconds since
	// the tracer was created (monotonic within one process).
	StartUnixNs int64  `json:"start_unix_ns"`
	MonoNs      int64  `json:"mono_ns"`
	DurNs       int64  `json:"dur_ns"`
	Attrs       []Attr `json:"attrs,omitempty"`
}

// EndUnixNs is the wall-clock end of the span.
func (r *Record) EndUnixNs() int64 { return r.StartUnixNs + r.DurNs }

// Attr returns the named attribute's value and whether it is present.
func (r *Record) Attr(key string) (Attr, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// AttrStr returns the named string attribute ("" when absent).
func (r *Record) AttrStr(key string) string {
	a, _ := r.Attr(key)
	return a.Str64()
}

// AttrInt returns the named attribute as an int64 (0 when absent).
func (r *Record) AttrInt(key string) int64 {
	a, _ := r.Attr(key)
	return a.Int64Value()
}

// event mirrors the manifest Event envelope (obs.Event) for the one
// kind this package writes. Keeping the shape here rather than
// importing obs preserves the dependency direction: obs imports span to
// parse "span" events back out of mixed manifests.
type event struct {
	Event      string  `json:"event"`
	TimeUnixNs int64   `json:"time_unix_ns"`
	Span       *Record `json:"span"`
}

// EventKind is the manifest event kind under which spans are recorded.
const EventKind = "span"

// Options configures a Tracer.
type Options struct {
	// Service names this process's spans and prefixes their IDs — the
	// coordinator uses "coord", workers their worker ID. Required to be
	// unique across the processes of one trace for IDs to merge cleanly.
	Service string
	// TraceID adopts an existing trace (a worker joining a job). Empty
	// starts a new trace named after the service and start time; a
	// worker with no TraceID adopts the coordinator's the first time a
	// response header carries one (AdoptTrace).
	TraceID string
	// Clock is the wall-time source; nil means the wall clock. Tests
	// inject a fault.FakeClock for bit-identical trace files.
	Clock fault.Clock
}

// Tracer creates spans and streams each finished one as a JSONL event.
// All methods are safe for concurrent use. A nil *Tracer is the
// disabled tracer: Start returns a nil *Span and nothing is written.
type Tracer struct {
	service string
	clock   fault.Clock
	start   time.Time
	seq     atomic.Int64

	mu      sync.Mutex
	trace   string
	buf     *bufio.Writer
	scratch []byte
	closed  bool
	file    io.Closer
	werr    error
}

// New returns a Tracer writing finished spans to w. The caller owns w;
// Close flushes buffering but does not close it.
func New(w io.Writer, opts Options) *Tracer {
	clock := opts.Clock
	if clock == nil {
		clock = fault.Wall
	}
	service := opts.Service
	if service == "" {
		service = fmt.Sprintf("proc-%d", os.Getpid())
	}
	start := clock.Now()
	trace := opts.TraceID
	if trace == "" {
		trace = fmt.Sprintf("%s-%x", service, start.UnixNano())
	}
	return &Tracer{
		service: service,
		clock:   clock,
		start:   start,
		trace:   trace,
		buf:     bufio.NewWriter(w),
	}
}

// Open creates (truncating) path and returns a Tracer writing to it;
// Close then also closes the file. The convenience constructor behind
// every -trace-out flag.
func Open(path string, opts Options) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("span: creating trace file: %w", err)
	}
	t := New(f, opts)
	t.file = f
	return t, nil
}

// TraceID returns the tracer's current trace ID. Nil-safe ("").
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trace
}

// AdoptTrace switches the tracer onto an existing trace — a worker
// adopting the coordinator's trace from the first response header it
// sees. Spans ended after adoption carry the adopted ID (the trace
// field is stamped at End, not Start). Empty IDs and nil tracers no-op.
func (t *Tracer) AdoptTrace(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	t.trace = id
	t.mu.Unlock()
}

// Start begins a span under parent (SpanContext{} for a root). The
// returned *Span is owned by one goroutine; End writes it. On a nil
// tracer Start returns nil, and all Span methods no-op on nil.
func (t *Tracer) Start(name string, parent SpanContext, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	return &Span{
		t:     t,
		start: now,
		rec: Record{
			ID:          fmt.Sprintf("%s-%d", t.service, t.seq.Add(1)),
			Parent:      parent.Span,
			Name:        name,
			Service:     t.service,
			StartUnixNs: now.UnixNano(),
			MonoNs:      now.Sub(t.start).Nanoseconds(),
			Attrs:       attrs,
		},
	}
}

// write streams one finished record. The JSON is appended by hand (see
// appendEvent) rather than through encoding/json: span writes happen on
// the engine's worker goroutines between chunks, and the reflective
// encoder's per-span cost was the bulk of the tracing overhead budget
// (BenchmarkSpanOverhead gates it at 2%).
func (t *Tracer) write(rec *Record) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.werr != nil || t.closed {
		return
	}
	rec.Trace = t.trace
	b := appendEvent(t.scratch[:0], now.UnixNano(), rec)
	t.scratch = b[:0]
	if _, err := t.buf.Write(b); err != nil {
		t.werr = err
	}
}

// Close flushes buffered spans (and closes the file when the tracer was
// built with Open), returning the first write error. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.werr
	}
	t.closed = true
	if err := t.buf.Flush(); err != nil && t.werr == nil {
		t.werr = err
	}
	if t.file != nil {
		if err := t.file.Close(); err != nil && t.werr == nil {
			t.werr = err
		}
	}
	return t.werr
}

// Span is one in-flight span. It is owned by the goroutine that started
// it (Annotate/End are not synchronized between goroutines); a nil
// *Span — from a nil tracer — ignores every call.
type Span struct {
	t     *Tracer
	start time.Time
	ended bool
	rec   Record
}

// Context returns the span's propagation context. Nil-safe (zero).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.t.TraceID(), Span: s.rec.ID}
}

// ID returns the span's ID. Nil-safe ("").
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.rec.ID
}

// Annotate appends attributes to the span. Nil-safe.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// End finishes the span, appending any final attributes, and writes it.
// A second End is a no-op, so error paths can End defensively. Nil-safe.
func (s *Span) End(attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
	s.rec.DurNs = s.t.clock.Now().Sub(s.start).Nanoseconds()
	s.t.write(&s.rec)
}

// appendEvent appends one finished span in the manifest event envelope
// ({"event":"span","time_unix_ns":N,"span":{…}}) followed by a newline.
// Hand-rolled so the write path never touches encoding/json's
// reflection; the output parses back through the same Record/Attr
// unmarshalers the reflective encoder fed (asserted by
// TestHandEncodedMatchesEncodingJSON).
func appendEvent(b []byte, nowNs int64, r *Record) []byte {
	b = append(b, `{"event":"span","time_unix_ns":`...)
	b = strconv.AppendInt(b, nowNs, 10)
	b = append(b, `,"span":{"trace":`...)
	b = appendJSONString(b, r.Trace)
	b = append(b, `,"id":`...)
	b = appendJSONString(b, r.ID)
	if r.Parent != "" {
		b = append(b, `,"parent":`...)
		b = appendJSONString(b, r.Parent)
	}
	b = append(b, `,"name":`...)
	b = appendJSONString(b, r.Name)
	if r.Service != "" {
		b = append(b, `,"svc":`...)
		b = appendJSONString(b, r.Service)
	}
	b = append(b, `,"start_unix_ns":`...)
	b = strconv.AppendInt(b, r.StartUnixNs, 10)
	b = append(b, `,"mono_ns":`...)
	b = strconv.AppendInt(b, r.MonoNs, 10)
	b = append(b, `,"dur_ns":`...)
	b = strconv.AppendInt(b, r.DurNs, 10)
	if len(r.Attrs) > 0 {
		b = append(b, `,"attrs":[`...)
		for i, a := range r.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"k":`...)
			b = appendJSONString(b, a.Key)
			b = append(b, `,"v":`...)
			switch a.kind {
			case attrInt:
				b = strconv.AppendInt(b, a.num, 10)
			case attrFloat:
				if math.IsNaN(a.flt) || math.IsInf(a.flt, 0) {
					b = append(b, '0') // JSON has no NaN/Inf; 0 beats a corrupt line
				} else {
					b = strconv.AppendFloat(b, a.flt, 'g', -1, 64)
				}
			case attrBool:
				if a.num != 0 {
					b = append(b, `true`...)
				} else {
					b = append(b, `false`...)
				}
			default:
				b = appendJSONString(b, a.str)
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}', '}', '\n')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (quote, backslash, control chars); valid
// UTF-8 passes through unescaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// ReadFile parses one JSONL trace (or mixed manifest) file, returning
// the span records in file order and skipping every other event kind.
// The parse is tolerant the way obs.ReadManifest is: blank lines are
// skipped, unknown kinds ignored; an unparseable line is an error.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("span: opening trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Read parses span records from a JSONL stream; see ReadFile.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("span: trace line %d: %w", line, err)
		}
		if e.Event == EventKind && e.Span != nil {
			out = append(out, *e.Span)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span: reading trace: %w", err)
	}
	return out, nil
}
