package span

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeFabricTrace scripts a small distributed run on a FakeClock:
// a coordinator job with three leases — one of which expires on worker
// w1 and is reassigned to w2 — plus chunk spans of very uneven
// durations (chunk 0 is the straggler). Returns the merged records.
func fakeFabricTrace(t *testing.T) []Record {
	t.Helper()
	clk := clockAt()
	var coordBuf, w1Buf, w2Buf bytes.Buffer
	coord := New(&coordBuf, Options{Service: "coord", Clock: clk})
	w1 := New(&w1Buf, Options{Service: "w1", Clock: clk})
	w2 := New(&w2Buf, Options{Service: "w2", Clock: clk})
	w1.AdoptTrace(coord.TraceID())
	w2.AdoptTrace(coord.TraceID())

	job := coord.Start("job", SpanContext{}, Str("model", "dining"))

	// Lease 1 to w1: chunks [0,2). Expires before delivery.
	l1 := coord.Start("lease", job.Context(), Str("lease", "lease-1"), Str("worker", "w1"), Int("lo", 0), Int("hi", 2))
	wl1 := w1.Start("worker.lease", l1.Context(), Str("worker", "w1"), Str("lease", "lease-1"))
	c0 := ChunkSpans(w1, wl1.Context()).ChunkStart(0, 64)
	clk.Advance(90 * time.Millisecond) // the straggler chunk
	c0(64, 0)
	clk.Advance(10 * time.Millisecond)
	l1.End(Str("outcome", "expired"), Int("reassigned", 2))
	wl1.End(Str("outcome", "expired"))

	// Lease 2 to w2: same range reassigned, delivered.
	l2 := coord.Start("lease", job.Context(), Str("lease", "lease-2"), Str("worker", "w2"), Int("lo", 0), Int("hi", 2))
	wl2 := w2.Start("worker.lease", l2.Context(), Str("worker", "w2"), Str("lease", "lease-2"))
	for chunk := 0; chunk < 2; chunk++ {
		end := ChunkSpans(w2, wl2.Context()).ChunkStart(chunk, 64)
		clk.Advance(5 * time.Millisecond)
		end(64, 0)
	}
	rpc := w2.Start("rpc.result", wl2.Context())
	srv := coord.Start("serve.result", rpc.Context())
	clk.Advance(time.Millisecond)
	srv.End()
	rpc.End()
	mg := coord.Start("merge", job.Context(), Int("chunks", 2))
	clk.Advance(time.Millisecond)
	mg.End(Int("accepted", 2), Int("duplicates", 0))
	l2.End(Str("outcome", "delivered"), Int("accepted", 2))
	wl2.End(Str("outcome", "delivered"))

	// Lease 3 to w2: chunks [2,4). It straggles, so the coordinator
	// hedges the same range to w1 (lease-4) before lease-3 expires; the
	// hedge delivers first and the original settles as a duplicate.
	l3 := coord.Start("lease", job.Context(), Str("lease", "lease-3"), Str("worker", "w2"), Int("lo", 2), Int("hi", 4))
	clk.Advance(4 * time.Millisecond)
	l4 := coord.Start("lease", job.Context(), Str("lease", "lease-4"), Str("worker", "w1"),
		Int("lo", 2), Int("hi", 4), Bool("hedge", true), Str("hedge_of", "lease-3"))
	clk.Advance(4 * time.Millisecond)
	l4.End(Str("outcome", "delivered"), Int("accepted", 2))
	l3.End(Str("outcome", "duplicate"))

	fin := coord.Start("finalize", job.Context())
	clk.Advance(time.Millisecond)
	fin.End(Str("outcome", "complete"))
	job.End(Str("outcome", "complete"))

	for _, tr := range []*Tracer{coord, w1, w2} {
		if err := tr.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	var recs []Record
	for _, buf := range []*bytes.Buffer{&coordBuf, &w1Buf, &w2Buf} {
		rs, err := Read(buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		recs = append(recs, rs...)
	}
	return recs
}

func TestTimelineStructure(t *testing.T) {
	recs := fakeFabricTrace(t)
	tl := BuildTimeline(recs)

	if got, want := len(tl.Spans), len(recs); got != want {
		t.Fatalf("timeline has %d spans, want %d", got, want)
	}
	if got := tl.Services(); strings.Join(got, " ") != "coord w1 w2" {
		t.Errorf("Services = %v, want [coord w1 w2]", got)
	}
	if roots := tl.Roots(); len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %v, want the single job span", roots)
	}
	// Causal order: every span's parent appears before it.
	pos := map[string]int{}
	for i, r := range tl.Spans {
		pos[r.ID] = i
	}
	for _, r := range tl.Spans {
		if r.Parent == "" {
			continue
		}
		if pp, ok := pos[r.Parent]; ok && pp > pos[r.ID] {
			t.Errorf("span %s appears before its parent %s", r.ID, r.Parent)
		}
	}
	// Cross-process nesting: w2's worker.lease hangs under coord's lease-2.
	var wl2 *Record
	for _, r := range tl.Spans {
		if r.Name == "worker.lease" && r.AttrStr("lease") == "lease-2" {
			wl2 = r
		}
	}
	if wl2 == nil {
		t.Fatal("worker.lease for lease-2 missing")
	}
	parent, ok := pos[wl2.Parent]
	if !ok {
		t.Fatalf("worker.lease parent %q not in timeline", wl2.Parent)
	}
	if p := tl.Spans[parent]; p.Name != "lease" || p.Service != "coord" {
		t.Errorf("worker.lease parents under %s/%s, want coord lease", p.Service, p.Name)
	}
}

func TestTimelineCriticalPath(t *testing.T) {
	tl := BuildTimeline(fakeFabricTrace(t))
	path := tl.CriticalPath()
	if len(path) < 2 {
		t.Fatalf("critical path = %d hops, want >= 2", len(path))
	}
	if path[0].Name != "job" {
		t.Errorf("critical path starts at %q, want job", path[0].Name)
	}
	last := path[len(path)-1]
	if last.Name != "finalize" {
		t.Errorf("critical path ends at %q, want finalize (the latest-ending leaf)", last.Name)
	}
	// Each hop must be a child of the previous.
	for i := 1; i < len(path); i++ {
		if path[i].Parent != path[i-1].ID {
			t.Errorf("hop %d (%s) is not a child of %s", i, path[i].ID, path[i-1].ID)
		}
	}
}

func TestTimelinePhaseStats(t *testing.T) {
	tl := BuildTimeline(fakeFabricTrace(t))
	stats := tl.PhaseStats()
	byPhase := map[string]PhaseStat{}
	var order []string
	for _, s := range stats {
		byPhase[s.Phase] = s
		order = append(order, s.Phase)
	}
	if want := "compute rpc merge other"; strings.Join(order, " ") != want {
		t.Fatalf("phase order = %v, want %s", order, want)
	}
	if c := byPhase["compute"]; c.Count != 3 || c.Max != 90*time.Millisecond {
		t.Errorf("compute = %+v, want count 3, max 90ms", c)
	}
	if r := byPhase["rpc"]; r.Count != 2 {
		t.Errorf("rpc count = %d, want 2 (rpc.result + serve.result)", r.Count)
	}
	if m := byPhase["merge"]; m.Count != 2 { // merge + finalize
		t.Errorf("merge count = %d, want 2", m.Count)
	}
}

func TestTimelineStragglers(t *testing.T) {
	tl := BuildTimeline(fakeFabricTrace(t))
	sg := tl.Stragglers()
	if len(sg) != 1 {
		t.Fatalf("stragglers = %d, want exactly the 90ms chunk", len(sg))
	}
	if got := sg[0].Span.AttrInt("chunk"); got != 0 {
		t.Errorf("straggler chunk = %d, want 0", got)
	}
	if got := time.Duration(sg[0].Span.DurNs); got != 90*time.Millisecond {
		t.Errorf("straggler duration = %v, want 90ms", got)
	}
}

func TestTimelineReassignmentChains(t *testing.T) {
	tl := BuildTimeline(fakeFabricTrace(t))
	chains := tl.ReassignmentChains()
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	ch := chains[0]
	if ch.Lo != 0 || ch.Hi != 2 {
		t.Errorf("chain range = [%d,%d), want [0,2)", ch.Lo, ch.Hi)
	}
	if len(ch.Leases) != 2 {
		t.Fatalf("chain has %d leases, want 2", len(ch.Leases))
	}
	if got := ch.Leases[0].AttrStr("lease"); got != "lease-1" {
		t.Errorf("chain starts at %q, want lease-1", got)
	}
	if got := ch.Leases[0].AttrStr("outcome"); got != "expired" {
		t.Errorf("first lease outcome = %q, want expired", got)
	}
	if got := ch.Leases[1].AttrStr("lease"); got != "lease-2" {
		t.Errorf("chain continues to %q, want lease-2", got)
	}
	if got := ch.Leases[1].AttrStr("outcome"); got != "delivered" {
		t.Errorf("final lease outcome = %q, want delivered", got)
	}
}

// TestTimelineHedgedLeases: the hedge relationship is surfaced from the
// "hedge_of" attribute and kept distinct from reassignment chains
// (which require a prior expiry — a hedge's original is still live).
func TestTimelineHedgedLeases(t *testing.T) {
	tl := BuildTimeline(fakeFabricTrace(t))
	hs := tl.HedgedLeases()
	if len(hs) != 1 {
		t.Fatalf("hedged leases = %d, want 1", len(hs))
	}
	h := hs[0]
	if got := h.Hedge.AttrStr("lease"); got != "lease-4" {
		t.Errorf("hedge lease = %q, want lease-4", got)
	}
	if h.Original == nil || h.Original.AttrStr("lease") != "lease-3" {
		t.Errorf("hedge original = %v, want lease-3", h.Original)
	}
	if got := h.Hedge.AttrInt("lo"); got != 2 {
		t.Errorf("hedge lo = %d, want 2", got)
	}
	// The hedge must not leak into the expiry-reassignment report.
	if chains := tl.ReassignmentChains(); len(chains) != 1 {
		t.Errorf("reassignment chains = %d, want 1 (the hedge is not a chain)", len(chains))
	}
}

// TestTimelineDeterministic is the acceptance gate for the analysis:
// the same scripted FakeClock scenario, built twice from scratch,
// renders byte-identical text and DOT reports.
func TestTimelineDeterministic(t *testing.T) {
	render := func() (string, string) {
		tl := BuildTimeline(fakeFabricTrace(t))
		var text, dot bytes.Buffer
		tl.RenderText(&text, RenderOptions{})
		tl.RenderDOT(&dot)
		return text.String(), dot.String()
	}
	text1, dot1 := render()
	text2, dot2 := render()
	if text1 != text2 {
		t.Errorf("RenderText not deterministic:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
	if dot1 != dot2 {
		t.Errorf("RenderDOT not deterministic")
	}
	for _, want := range []string{
		"critical path", "phase latency", "stragglers", "reassignment chains",
		"chunks [0,2): lease-1 (w1, expired) -> lease-2 (w2, delivered)",
		"1 hedged", "hedged leases (duplicates issued before expiry):",
		"chunks [2,4): lease-4 (w1, delivered) hedges lease-3 (w2, duplicate)",
	} {
		if !strings.Contains(text1, want) {
			t.Errorf("RenderText missing %q:\n%s", want, text1)
		}
	}
	if !strings.Contains(dot1, "digraph trace") {
		t.Errorf("RenderDOT missing digraph header")
	}
}

// TestTimelineTreeLimit checks the tree cap and its truncation note.
func TestTimelineTreeLimit(t *testing.T) {
	tl := BuildTimeline(fakeFabricTrace(t))
	var buf bytes.Buffer
	tl.RenderText(&buf, RenderOptions{TreeLimit: 2})
	out := buf.String()
	if !strings.Contains(out, "more spans") {
		t.Errorf("limited render missing truncation note:\n%s", out)
	}
	buf.Reset()
	tl.RenderText(&buf, RenderOptions{TreeLimit: -1})
	if strings.Contains(buf.String(), "timeline:") {
		t.Errorf("negative TreeLimit still rendered the tree")
	}
}

// TestTimelineOrphans: a worker file read without its coordinator's
// forms a forest with the orphaned spans as roots, not an error.
func TestTimelineOrphans(t *testing.T) {
	recs := []Record{
		{Trace: "t", ID: "w1-1", Parent: "coord-9", Name: "worker.lease", Service: "w1", StartUnixNs: 100, DurNs: 50},
		{Trace: "t", ID: "w1-2", Parent: "w1-1", Name: "chunk", Service: "w1", StartUnixNs: 110, DurNs: 20},
	}
	tl := BuildTimeline(recs)
	if len(tl.Roots()) != 1 || tl.Roots()[0].ID != "w1-1" {
		t.Fatalf("roots = %v, want the orphaned worker.lease", tl.Roots())
	}
	if cs := tl.Children("w1-1"); len(cs) != 1 || cs[0].ID != "w1-2" {
		t.Errorf("children = %v, want the chunk", cs)
	}
	// Duplicate IDs (the same file read twice) keep the first record.
	dup := append(recs, recs...)
	if tl2 := BuildTimeline(dup); len(tl2.Spans) != 2 {
		t.Errorf("duplicate merge kept %d spans, want 2", len(tl2.Spans))
	}
}
