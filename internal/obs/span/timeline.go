package span

// The analysis half of the tracing layer: merge the JSONL trace files
// of one run (coordinator + workers) into a causally-ordered Timeline,
// then derive what an operator actually asks of a slow distributed run
// — where the end-to-end time went (critical path), how each phase's
// latency is distributed (lease wait vs compute vs RPC vs merge), and
// which chunks or leases dragged (stragglers, reassignment chains).
//
// Everything here is deterministic for a fixed input: ties are broken
// by explicit (time, mono, ID) orderings and maps are never iterated
// into output, so a fixed seed + FakeClock scenario renders the same
// bytes every run (asserted by TestTimelineDeterministic).

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Timeline is a merged, causally-ordered set of span records.
type Timeline struct {
	// Spans is every record, ordered causally: parents precede
	// children, siblings order by (start wall, mono, ID).
	Spans []*Record

	byID     map[string]*Record
	children map[string][]*Record
	roots    []*Record
	t0       int64 // earliest wall start, the timeline origin
}

// BuildTimeline merges records (from any number of trace files) into a
// Timeline. Duplicate span IDs keep the first occurrence; records form
// a forest (spans whose parent is absent — e.g. a worker file read
// without its coordinator's — become roots).
func BuildTimeline(recs []Record) *Timeline {
	tl := &Timeline{
		byID:     make(map[string]*Record, len(recs)),
		children: map[string][]*Record{},
	}
	ordered := make([]*Record, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if _, dup := tl.byID[r.ID]; dup {
			continue
		}
		tl.byID[r.ID] = r
		ordered = append(ordered, r)
		if tl.t0 == 0 || r.StartUnixNs < tl.t0 {
			tl.t0 = r.StartUnixNs
		}
	}
	for _, r := range ordered {
		if r.Parent != "" {
			if _, ok := tl.byID[r.Parent]; ok {
				tl.children[r.Parent] = append(tl.children[r.Parent], r)
				continue
			}
		}
		tl.roots = append(tl.roots, r)
	}
	sortSpans(tl.roots)
	for _, cs := range tl.children {
		sortSpans(cs)
	}
	var walk func(r *Record)
	walk = func(r *Record) {
		tl.Spans = append(tl.Spans, r)
		for _, c := range tl.children[r.ID] {
			walk(c)
		}
	}
	for _, r := range tl.roots {
		walk(r)
	}
	return tl
}

// sortSpans orders siblings deterministically: start wall time, then
// in-process monotonic offset, then ID.
func sortSpans(rs []*Record) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.StartUnixNs != b.StartUnixNs {
			return a.StartUnixNs < b.StartUnixNs
		}
		if a.MonoNs != b.MonoNs {
			return a.MonoNs < b.MonoNs
		}
		return a.ID < b.ID
	})
}

// Children returns the (causally ordered) children of a span.
func (tl *Timeline) Children(id string) []*Record { return tl.children[id] }

// Roots returns the root spans (no parent in the merged set).
func (tl *Timeline) Roots() []*Record { return tl.roots }

// Services returns the distinct services present, sorted.
func (tl *Timeline) Services() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range tl.Spans {
		if r.Service != "" && !seen[r.Service] {
			seen[r.Service] = true
			out = append(out, r.Service)
		}
	}
	sort.Strings(out)
	return out
}

// TraceID returns the dominant trace ID (the first root's).
func (tl *Timeline) TraceID() string {
	if len(tl.roots) == 0 {
		return ""
	}
	return tl.roots[0].Trace
}

// WallNs returns the end-to-end wall span: latest end minus earliest
// start across every span.
func (tl *Timeline) WallNs() int64 {
	var end int64
	for _, r := range tl.Spans {
		if e := r.EndUnixNs(); e > end {
			end = e
		}
	}
	if end == 0 {
		return 0
	}
	return end - tl.t0
}

// CriticalPath returns the chain of spans that determined the
// timeline's end: starting from the latest-ending "job" root — the
// end-to-end work; a straggling worker's post-job poll can outlive it
// and must not hijack the path — or, with no job root, the root that
// ends latest, it repeatedly descends into the child whose end time is
// latest. Deterministic: ties break by start, mono, ID.
func (tl *Timeline) CriticalPath() []*Record {
	if len(tl.roots) == 0 {
		return nil
	}
	candidates := tl.roots
	var jobs []*Record
	for _, r := range tl.roots {
		if r.Name == "job" {
			jobs = append(jobs, r)
		}
	}
	if len(jobs) > 0 {
		candidates = jobs
	}
	root := candidates[0]
	for _, r := range candidates[1:] {
		if laterEnd(r, root) {
			root = r
		}
	}
	path := []*Record{root}
	cur := root
	for {
		cs := tl.children[cur.ID]
		if len(cs) == 0 {
			return path
		}
		next := cs[0]
		for _, c := range cs[1:] {
			if laterEnd(c, next) {
				next = c
			}
		}
		path = append(path, next)
		cur = next
	}
}

// laterEnd reports whether a strictly dominates b in the critical-path
// order: later end, then later start, then later mono, then greater ID.
func laterEnd(a, b *Record) bool {
	if a.EndUnixNs() != b.EndUnixNs() {
		return a.EndUnixNs() > b.EndUnixNs()
	}
	if a.StartUnixNs != b.StartUnixNs {
		return a.StartUnixNs > b.StartUnixNs
	}
	if a.MonoNs != b.MonoNs {
		return a.MonoNs > b.MonoNs
	}
	return a.ID > b.ID
}

// Phase is the canonical grouping of span names into latency phases.
func Phase(name string) string {
	switch {
	case name == "lease.wait":
		return "lease-wait"
	case name == "chunk":
		return "compute"
	case strings.HasPrefix(name, "rpc.") || strings.HasPrefix(name, "serve."):
		return "rpc"
	case name == "merge" || name == "finalize" || name == "restore":
		return "merge"
	default:
		return "other"
	}
}

// phaseOrder fixes the report row order.
var phaseOrder = []string{"lease-wait", "compute", "rpc", "merge", "other"}

// PhaseStat is the latency distribution of one phase.
type PhaseStat struct {
	Phase string
	Count int
	Total time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// PhaseStats computes per-phase latency distributions over all spans.
// Phases with no spans are omitted; rows come back in canonical order.
func (tl *Timeline) PhaseStats() []PhaseStat {
	durs := map[string][]int64{}
	for _, r := range tl.Spans {
		p := Phase(r.Name)
		durs[p] = append(durs[p], r.DurNs)
	}
	var out []PhaseStat
	for _, p := range phaseOrder {
		ds := durs[p]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total int64
		for _, d := range ds {
			total += d
		}
		out = append(out, PhaseStat{
			Phase: p,
			Count: len(ds),
			Total: time.Duration(total),
			Mean:  time.Duration(total / int64(len(ds))),
			P50:   time.Duration(percentile(ds, 0.50)),
			P90:   time.Duration(percentile(ds, 0.90)),
			P99:   time.Duration(percentile(ds, 0.99)),
			Max:   time.Duration(ds[len(ds)-1]),
		})
	}
	return out
}

// percentile returns the q-th percentile of sorted ns durations
// (nearest-rank).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Straggler is one chunk span whose duration exceeded the p99 of all
// chunk spans.
type Straggler struct {
	Span *Record
	P99  time.Duration
}

// percentileInterp is the linearly interpolated q-th percentile —
// used for the straggler threshold, where nearest-rank would collapse
// to the max on small chunk counts and never flag anything.
func percentileInterp(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + int64(frac*float64(sorted[lo+1]-sorted[lo]))
}

// Stragglers returns the chunk spans strictly above the (interpolated)
// p99 chunk duration, slowest first (ties by span order).
func (tl *Timeline) Stragglers() []Straggler {
	var chunks []*Record
	var durs []int64
	for _, r := range tl.Spans {
		if r.Name == "chunk" {
			chunks = append(chunks, r)
			durs = append(durs, r.DurNs)
		}
	}
	if len(chunks) < 2 {
		return nil
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p99 := percentileInterp(durs, 0.99)
	var out []Straggler
	for _, r := range chunks {
		if r.DurNs > p99 {
			out = append(out, Straggler{Span: r, P99: time.Duration(p99)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Span.DurNs != out[j].Span.DurNs {
			return out[i].Span.DurNs > out[j].Span.DurNs
		}
		return out[i].Span.ID < out[j].Span.ID
	})
	return out
}

// ReassignmentChain is the history of one expired lease's chunk range:
// the expired lease followed by the later leases that re-covered its
// chunks (themselves possibly expired and re-covered again).
type ReassignmentChain struct {
	// Chunks is the chunk range of the first expired lease.
	Lo, Hi int64
	// Leases is the chain, expiry order: every lease but possibly the
	// last has outcome "expired".
	Leases []*Record
}

// ReassignmentChains links each expired lease span to the later lease
// spans that took over its chunk range — the trace-level record of the
// fabric's reassign-on-expiry behavior. A lease span is expected to
// carry "lo"/"hi" int attributes and an "outcome" string attribute.
func (tl *Timeline) ReassignmentChains() []ReassignmentChain {
	var leases []*Record
	for _, r := range tl.Spans {
		if r.Name == "lease" {
			leases = append(leases, r)
		}
	}
	sortSpans(leases)
	expired := func(r *Record) bool { return r.AttrStr("outcome") == "expired" }
	overlaps := func(a, b *Record) bool {
		return a.AttrInt("lo") < b.AttrInt("hi") && b.AttrInt("lo") < a.AttrInt("hi")
	}
	// successor: the earliest later-starting lease overlapping r's range.
	successor := func(r *Record) *Record {
		for _, cand := range leases {
			if cand == r || !overlaps(r, cand) {
				continue
			}
			if cand.StartUnixNs > r.StartUnixNs ||
				(cand.StartUnixNs == r.StartUnixNs && cand.MonoNs > r.MonoNs) ||
				(cand.StartUnixNs == r.StartUnixNs && cand.MonoNs == r.MonoNs && cand.ID > r.ID) {
				return cand
			}
		}
		return nil
	}
	inChain := map[string]bool{}
	var out []ReassignmentChain
	for _, r := range leases {
		if !expired(r) || inChain[r.ID] {
			continue
		}
		chain := ReassignmentChain{Lo: r.AttrInt("lo"), Hi: r.AttrInt("hi"), Leases: []*Record{r}}
		inChain[r.ID] = true
		for cur := r; ; {
			next := successor(cur)
			if next == nil {
				break
			}
			chain.Leases = append(chain.Leases, next)
			inChain[next.ID] = true
			if !expired(next) {
				break
			}
			cur = next
		}
		out = append(out, chain)
	}
	return out
}

// HedgedLease pairs one speculative duplicate lease with the original
// it hedged.
type HedgedLease struct {
	// Hedge is the duplicate lease span (carries the "hedge_of" attr).
	Hedge *Record
	// Original is the straggling lease's span, nil when its record is
	// not in the merged set (e.g. a worker file read without the
	// coordinator's).
	Original *Record
}

// HedgedLeases returns the hedge relationships, in span order: lease
// spans carrying a "hedge_of" attribute — speculative duplicates the
// coordinator issued against a straggler before its lease expired —
// paired with the original lease's span. Hedges are deliberately
// distinct from ReassignmentChains: a chain requires a prior expiry,
// a hedge overlaps a lease that is still live when it is issued.
func (tl *Timeline) HedgedLeases() []HedgedLease {
	byLease := map[string]*Record{}
	var hedges []*Record
	for _, r := range tl.Spans {
		if r.Name != "lease" {
			continue
		}
		if id := r.AttrStr("lease"); id != "" {
			if _, dup := byLease[id]; !dup {
				byLease[id] = r
			}
		}
		if r.AttrStr("hedge_of") != "" {
			hedges = append(hedges, r)
		}
	}
	out := make([]HedgedLease, 0, len(hedges))
	for _, h := range hedges {
		out = append(out, HedgedLease{Hedge: h, Original: byLease[h.AttrStr("hedge_of")]})
	}
	return out
}

// RenderOptions tunes RenderText.
type RenderOptions struct {
	// TreeLimit caps the timeline tree at that many lines (0 = default
	// 120; negative = omit the tree entirely).
	TreeLimit int
}

// RenderText writes the full human report: header, timeline tree,
// critical path, per-phase latency, stragglers and reassignment
// chains. Output is deterministic for a fixed input.
func (tl *Timeline) RenderText(w io.Writer, opts RenderOptions) {
	fmt.Fprintf(w, "trace %s: %d spans, services [%s], wall %s",
		orUnknown(tl.TraceID()), len(tl.Spans), strings.Join(tl.Services(), " "), time.Duration(tl.WallNs()))
	hedges := tl.HedgedLeases()
	if n := len(hedges); n > 0 {
		fmt.Fprintf(w, ", %d hedged", n)
	}
	fmt.Fprintln(w)

	limit := opts.TreeLimit
	if limit == 0 {
		limit = 120
	}
	if limit > 0 {
		fmt.Fprintf(w, "\ntimeline:\n")
		lines := 0
		var walk func(r *Record, depth int)
		var truncated int
		walk = func(r *Record, depth int) {
			if lines >= limit {
				truncated++
				return
			}
			lines++
			fmt.Fprintf(w, "  %s%s\n", strings.Repeat("  ", depth), tl.line(r))
			for _, c := range tl.children[r.ID] {
				walk(c, depth+1)
			}
		}
		for _, r := range tl.roots {
			walk(r, 0)
		}
		if truncated > 0 {
			fmt.Fprintf(w, "  ... (%d more spans; raise the tree limit to see them)\n", truncated)
		}
	}

	path := tl.CriticalPath()
	fmt.Fprintf(w, "\ncritical path (%d hops, ends at +%s):\n", len(path), tl.offset(latestEnd(path)))
	for i, r := range path {
		fmt.Fprintf(w, "  %s%s\n", strings.Repeat("  ", i), tl.line(r))
	}

	stats := tl.PhaseStats()
	if len(stats) > 0 {
		fmt.Fprintf(w, "\nphase latency:\n")
		fmt.Fprintf(w, "  %-11s %6s %12s %12s %12s %12s %12s %12s\n", "phase", "count", "total", "mean", "p50", "p90", "p99", "max")
		for _, s := range stats {
			fmt.Fprintf(w, "  %-11s %6d %12s %12s %12s %12s %12s %12s\n",
				s.Phase, s.Count, s.Total, s.Mean, s.P50, s.P90, s.P99, s.Max)
		}
	}

	if sg := tl.Stragglers(); len(sg) > 0 {
		fmt.Fprintf(w, "\nstragglers (chunk spans > p99 %s):\n", sg[0].P99)
		for _, s := range sg {
			fmt.Fprintf(w, "  chunk %d [%s] %s on %s\n",
				s.Span.AttrInt("chunk"), s.Span.ID, time.Duration(s.Span.DurNs), orUnknown(s.Span.Service))
		}
	}

	if chains := tl.ReassignmentChains(); len(chains) > 0 {
		fmt.Fprintf(w, "\nreassignment chains:\n")
		for _, ch := range chains {
			var hops []string
			for _, l := range ch.Leases {
				hops = append(hops, fmt.Sprintf("%s (%s, %s)",
					l.AttrStr("lease"), orUnknown(l.AttrStr("worker")), orUnknown(l.AttrStr("outcome"))))
			}
			fmt.Fprintf(w, "  chunks [%d,%d): %s\n", ch.Lo, ch.Hi, strings.Join(hops, " -> "))
		}
	}

	if len(hedges) > 0 {
		fmt.Fprintf(w, "\nhedged leases (duplicates issued before expiry):\n")
		for _, h := range hedges {
			orig := h.Hedge.AttrStr("hedge_of")
			if h.Original != nil {
				orig = fmt.Sprintf("%s (%s, %s)", h.Original.AttrStr("lease"),
					orUnknown(h.Original.AttrStr("worker")), orUnknown(h.Original.AttrStr("outcome")))
			}
			fmt.Fprintf(w, "  chunks [%d,%d): %s (%s, %s) hedges %s\n",
				h.Hedge.AttrInt("lo"), h.Hedge.AttrInt("hi"),
				h.Hedge.AttrStr("lease"), orUnknown(h.Hedge.AttrStr("worker")),
				orUnknown(h.Hedge.AttrStr("outcome")), orig)
		}
	}
}

// line renders one span for the tree and critical-path sections.
func (tl *Timeline) line(r *Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] +%s %s", r.Name, r.ID, tl.offset(r.StartUnixNs), time.Duration(r.DurNs))
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value())
	}
	return b.String()
}

func (tl *Timeline) offset(unixNs int64) time.Duration {
	return time.Duration(unixNs - tl.t0)
}

func latestEnd(rs []*Record) int64 {
	var end int64
	for _, r := range rs {
		if e := r.EndUnixNs(); e > end {
			end = e
		}
	}
	return end
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}

// RenderDOT writes the span forest as a Graphviz digraph: one node per
// span (labelled name + duration, colored by critical-path membership),
// one edge per parent link. Deterministic node and edge order.
func (tl *Timeline) RenderDOT(w io.Writer) {
	onPath := map[string]bool{}
	for _, r := range tl.CriticalPath() {
		onPath[r.ID] = true
	}
	fmt.Fprintln(w, "digraph trace {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, r := range tl.Spans {
		attr := ""
		if onPath[r.ID] {
			attr = ", color=red, penwidth=2"
		}
		fmt.Fprintf(w, "  %q [label=\"%s\\n%s %s\"%s];\n", r.ID, r.ID, r.Name, time.Duration(r.DurNs), attr)
	}
	for _, r := range tl.Spans {
		if r.Parent != "" {
			if _, ok := tl.byID[r.Parent]; ok {
				fmt.Fprintf(w, "  %q -> %q;\n", r.Parent, r.ID)
			}
		}
	}
	fmt.Fprintln(w, "}")
}
