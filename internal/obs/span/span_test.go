package span

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// clockAt returns a FakeClock starting at a fixed, arbitrary instant —
// every deterministic-trace test anchors here.
func clockAt() *fault.FakeClock {
	return fault.NewFakeClock(time.Unix(1_700_000_000, 0))
}

// TestNilTracer pins the disabled-tracing contract: a nil *Tracer and
// the nil *Span it starts absorb every call, return zero values, and
// never panic — instrumented code needs no conditionals.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if got := tr.TraceID(); got != "" {
		t.Errorf("nil tracer TraceID = %q, want empty", got)
	}
	tr.AdoptTrace("other")
	sp := tr.Start("job", SpanContext{}, Str("k", "v"))
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil span", sp)
	}
	if got := sp.Context(); got != (SpanContext{}) {
		t.Errorf("nil span Context = %+v, want zero", got)
	}
	if got := sp.ID(); got != "" {
		t.Errorf("nil span ID = %q, want empty", got)
	}
	sp.Annotate(Int("n", 1))
	sp.End(Str("outcome", "done"))
	sp.End() // double End on nil is fine too
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close = %v", err)
	}
	if hooks := ChunkSpans(nil, SpanContext{}); hooks != nil {
		t.Errorf("ChunkSpans(nil tracer) = %v, want nil (so the interface field stays nil)", hooks)
	}
}

// TestSpanRoundTrip writes spans through a tracer and reads them back,
// checking IDs, parentage, timing, and typed attributes survive the
// JSONL round trip.
func TestSpanRoundTrip(t *testing.T) {
	clk := clockAt()
	var buf bytes.Buffer
	tr := New(&buf, Options{Service: "coord", Clock: clk})

	root := tr.Start("job", SpanContext{}, Str("model", "dining"), Int("n", 5))
	clk.Advance(10 * time.Millisecond)
	child := tr.Start("lease", root.Context(), Str("worker", "w1"), Float("load", 0.5), Bool("retry", true))
	clk.Advance(5 * time.Millisecond)
	child.End(Str("outcome", "delivered"))
	clk.Advance(time.Millisecond)
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Spans are written at End, so the child lands first.
	lease, job := recs[0], recs[1]
	if lease.Name != "lease" || job.Name != "job" {
		t.Fatalf("record order: got %q, %q; want lease, job", lease.Name, job.Name)
	}
	if job.ID != "coord-1" || lease.ID != "coord-2" {
		t.Errorf("IDs = %q, %q; want coord-1, coord-2", job.ID, lease.ID)
	}
	if lease.Parent != job.ID {
		t.Errorf("lease parent = %q, want %q", lease.Parent, job.ID)
	}
	if job.Trace != lease.Trace || job.Trace == "" {
		t.Errorf("trace IDs differ or empty: %q vs %q", job.Trace, lease.Trace)
	}
	if got := time.Duration(lease.DurNs); got != 5*time.Millisecond {
		t.Errorf("lease duration = %v, want 5ms", got)
	}
	if got := time.Duration(job.DurNs); got != 16*time.Millisecond {
		t.Errorf("job duration = %v, want 16ms", got)
	}
	if got := lease.StartUnixNs - job.StartUnixNs; got != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("lease started %dns after job, want 10ms", got)
	}
	if got := lease.AttrStr("worker"); got != "w1" {
		t.Errorf("worker attr = %q, want w1", got)
	}
	if got := lease.AttrStr("outcome"); got != "delivered" {
		t.Errorf("outcome attr = %q (End-time attrs must append), want delivered", got)
	}
	if a, ok := lease.Attr("load"); !ok || a.Float64() != 0.5 {
		t.Errorf("load attr = %v, %v; want 0.5, true", a.Value(), ok)
	}
	if a, ok := lease.Attr("retry"); !ok || a.Value() != true {
		t.Errorf("retry attr = %v, %v; want true, true", a.Value(), ok)
	}
	if got := job.AttrInt("n"); got != 5 {
		t.Errorf("n attr = %d, want 5", got)
	}
}

// TestAdoptTrace pins the worker-joins-coordinator behavior: spans
// ended after adoption carry the adopted trace ID, even when they were
// started before it (the trace field is stamped at write time).
func TestAdoptTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{Service: "w1", Clock: clockAt()})
	early := tr.Start("rpc.lease", SpanContext{})
	tr.AdoptTrace("coord-abc")
	if got := tr.TraceID(); got != "coord-abc" {
		t.Fatalf("TraceID after adopt = %q, want coord-abc", got)
	}
	tr.AdoptTrace("") // empty no-ops
	if got := tr.TraceID(); got != "coord-abc" {
		t.Fatalf("TraceID after empty adopt = %q, want coord-abc", got)
	}
	early.End()
	tr.Close()
	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if recs[0].Trace != "coord-abc" {
		t.Errorf("span started pre-adoption has trace %q, want coord-abc", recs[0].Trace)
	}
}

// TestInjectExtract round-trips a SpanContext through HTTP headers.
func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	sc := SpanContext{Trace: "t-1", Span: "coord-7"}
	Inject(sc, h)
	if got := h.Get(HeaderTraceID); got != "t-1" {
		t.Errorf("%s = %q, want t-1", HeaderTraceID, got)
	}
	if got := Extract(h); got != sc {
		t.Errorf("Extract = %+v, want %+v", got, sc)
	}
	if got := Extract(http.Header{}); got != (SpanContext{}) {
		t.Errorf("Extract of empty headers = %+v, want zero", got)
	}
	// Empty fields must not set headers (a zero context injects nothing).
	h2 := http.Header{}
	Inject(SpanContext{}, h2)
	if len(h2) != 0 {
		t.Errorf("Inject of zero context set headers: %v", h2)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines; the run
// is validated by the race detector plus a full read-back.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{Service: "c"})
	root := tr.Start("job", SpanContext{})
	var wg sync.WaitGroup
	const per = 20
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Start("chunk", root.Context(), Int("i", i))
				sp.Annotate(Int("j", i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if want := 8*per + 1; len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span ID %q", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestReadSkipsOtherEvents checks trace parsing tolerates the shared
// manifest envelope: blank lines and non-span events are skipped.
func TestReadSkipsOtherEvents(t *testing.T) {
	in := strings.Join([]string{
		`{"event":"run_start","time_unix_ns":1,"meta":{}}`,
		``,
		`{"event":"span","time_unix_ns":2,"span":{"trace":"t","id":"a-1","name":"job","start_unix_ns":1,"mono_ns":0,"dur_ns":5}}`,
		`{"event":"progress","time_unix_ns":3}`,
	}, "\n")
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "a-1" {
		t.Fatalf("got %+v, want the single a-1 span", recs)
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("Read of garbage succeeded, want error")
	}
}

// TestChunkSpanner checks the engine-facing hook emits one chunk span
// per chunk with start and completion attributes.
func TestChunkSpanner(t *testing.T) {
	clk := clockAt()
	var buf bytes.Buffer
	tr := New(&buf, Options{Service: "w", Clock: clk})
	root := tr.Start("job", SpanContext{})
	hooks := ChunkSpans(tr, root.Context(), Str("worker", "w"))
	end := hooks.ChunkStart(3, 64)
	clk.Advance(2 * time.Millisecond)
	end(64, 1)
	root.End()
	tr.Close()

	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	chunk := recs[0]
	if chunk.Name != "chunk" || chunk.Parent != root.ID() {
		t.Fatalf("chunk span = %+v, want name=chunk parent=%s", chunk, root.ID())
	}
	for k, want := range map[string]int64{"chunk": 3, "trials": 64, "completed": 64, "quarantined": 1} {
		if got := chunk.AttrInt(k); got != want {
			t.Errorf("%s attr = %d, want %d", k, got, want)
		}
	}
	if got := chunk.AttrStr("worker"); got != "w" {
		t.Errorf("worker attr = %q, want w", got)
	}
	if got := time.Duration(chunk.DurNs); got != 2*time.Millisecond {
		t.Errorf("chunk duration = %v, want 2ms", got)
	}
}

// TestHandEncodedMatchesEncodingJSON pins the hand-rolled write path
// (appendEvent) against encoding/json over the same event struct: both
// must decode to identical records, including attrs that need string
// escaping and every attr kind. The write path dropped the reflective
// encoder for speed; this is the guard that it still speaks the same
// schema.
func TestHandEncodedMatchesEncodingJSON(t *testing.T) {
	rec := Record{
		Trace:       "coord-abc",
		ID:          "w1-7",
		Parent:      "coord-2",
		Name:        "rpc.result",
		Service:     "w1",
		StartUnixNs: 1_700_000_000_123_456_789,
		MonoNs:      42,
		DurNs:       9_999,
		Attrs: []Attr{
			Str("error", "Post \"http://x/v1/lease\": dial tcp: refused\n\ttab \\ and \x01 control"),
			Int("chunk", -3),
			Int64("big", 1<<60),
			Float("ratio", 0.375),
			Float("exp", 1e21),
			Bool("ok", true),
			Bool("bad", false),
			Str("empty", ""),
		},
	}

	hand := appendEvent(nil, 555, &rec)
	ref, err := json.Marshal(event{Event: EventKind, TimeUnixNs: 555, Span: &rec})
	if err != nil {
		t.Fatal(err)
	}

	var fromHand, fromRef event
	if err := json.Unmarshal(hand, &fromHand); err != nil {
		t.Fatalf("hand-encoded line does not parse: %v\n%s", err, hand)
	}
	if err := json.Unmarshal(ref, &fromRef); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromHand, fromRef) {
		t.Errorf("hand encoding diverges from encoding/json:\nhand: %s\nref:  %s", hand, ref)
	}

	// Minimal record: omitempty fields must be omitted, not emitted empty.
	minimal := Record{Trace: "t", ID: "a-1", Name: "job", StartUnixNs: 1}
	hand = appendEvent(nil, 1, &minimal)
	for _, absent := range []string{`"parent"`, `"svc"`, `"attrs"`} {
		if bytes.Contains(hand, []byte(absent)) {
			t.Errorf("minimal record emits %s: %s", absent, hand)
		}
	}
	var back event
	if err := json.Unmarshal(hand, &back); err != nil {
		t.Fatalf("minimal hand-encoded line does not parse: %v\n%s", err, hand)
	}
	if !reflect.DeepEqual(*back.Span, minimal) {
		t.Errorf("minimal round-trip: got %+v, want %+v", *back.Span, minimal)
	}

	// Non-finite floats must still produce a parseable line.
	nan := Record{Trace: "t", ID: "a-2", Name: "job", Attrs: []Attr{Float("x", math.NaN()), Float("y", math.Inf(1))}}
	if err := json.Unmarshal(appendEvent(nil, 1, &nan), &back); err != nil {
		t.Errorf("NaN/Inf attrs made the line unparseable: %v", err)
	}
}
