package span

// The engine bridge: ChunkSpanner satisfies sim.SpanHooks structurally
// (builtin types only; neither package imports the other), turning the
// parallel engine's chunk lifecycle into "chunk" spans. One span per
// 64-trial chunk is cold enough to never matter; the per-trial loop is
// untouched.

// ChunkSpanner emits one "chunk" span per engine chunk. Build with
// ChunkSpans and assign to sim.ParallelOptions.SpanHooks — but only
// when the tracer is non-nil: a typed-nil interface would defeat the
// engine's nil check.
type ChunkSpanner struct {
	t      *Tracer
	parent SpanContext
	attrs  []Attr
}

// ChunkSpans returns a ChunkSpanner parenting each chunk span under
// parent and stamping attrs (e.g. the lease ID or sweep stage) on every
// chunk. Returns nil when t is nil, so callers can write
//
//	if cs := span.ChunkSpans(tr, parent); cs != nil {
//		popts.SpanHooks = cs
//	}
func ChunkSpans(t *Tracer, parent SpanContext, attrs ...Attr) *ChunkSpanner {
	if t == nil {
		return nil
	}
	return &ChunkSpanner{t: t, parent: parent, attrs: attrs}
}

// ChunkStart implements sim.SpanHooks: it opens a span for one claimed
// chunk and returns the closure the engine calls exactly once when the
// chunk commits or is abandoned.
func (c *ChunkSpanner) ChunkStart(chunk, trials int) func(completed, quarantined int) {
	sp := c.t.Start("chunk", c.parent, append([]Attr{Int("chunk", chunk), Int("trials", trials)}, c.attrs...)...)
	return func(completed, quarantined int) {
		sp.End(Int("completed", completed), Int("quarantined", quarantined))
	}
}
