package events

import (
	"repro/internal/exec"
	"repro/internal/prob"
)

// andMonitor tracks a conjunction of sub-events. Sub-monitors that have
// already delivered an absorbing verdict are dropped (on Accepted) or
// decide the conjunction (on Rejected).
type andMonitor[S comparable] struct {
	pending []exec.Monitor[S]
}

// And returns the intersection event: a maximal execution is in the event
// iff it is in every argument event. Proposition 4.2(1) of the paper
// bounds P[first(a1,U1) ∩ ... ∩ first(an,Un)] from below by p1···pn; the
// intersection itself is expressed with And.
func And[S comparable](ms ...exec.Monitor[S]) exec.Monitor[S] {
	return andMonitor[S]{pending: ms}
}

func (a andMonitor[S]) Start(s S) (exec.Monitor[S], exec.Status) {
	next := make([]exec.Monitor[S], 0, len(a.pending))
	for _, m := range a.pending {
		m2, status := m.Start(s)
		switch status {
		case exec.Rejected:
			return a, exec.Rejected
		case exec.Undetermined:
			next = append(next, m2)
		}
	}
	if len(next) == 0 {
		return a, exec.Accepted
	}
	return andMonitor[S]{pending: next}, exec.Undetermined
}

func (a andMonitor[S]) Observe(action string, nextState S, now prob.Rat) (exec.Monitor[S], exec.Status) {
	next := make([]exec.Monitor[S], 0, len(a.pending))
	for _, m := range a.pending {
		m2, status := m.Observe(action, nextState, now)
		switch status {
		case exec.Rejected:
			return a, exec.Rejected
		case exec.Undetermined:
			next = append(next, m2)
		}
	}
	if len(next) == 0 {
		return a, exec.Accepted
	}
	return andMonitor[S]{pending: next}, exec.Undetermined
}

func (a andMonitor[S]) AtEnd() exec.Status {
	for _, m := range a.pending {
		switch m.AtEnd() {
		case exec.Rejected:
			return exec.Rejected
		case exec.Undetermined:
			return exec.Undetermined
		}
	}
	return exec.Accepted
}

// orMonitor tracks a disjunction of sub-events.
type orMonitor[S comparable] struct {
	pending []exec.Monitor[S]
}

// Or returns the union event: a maximal execution is in the event iff it
// is in at least one argument event.
func Or[S comparable](ms ...exec.Monitor[S]) exec.Monitor[S] {
	return orMonitor[S]{pending: ms}
}

func (o orMonitor[S]) Start(s S) (exec.Monitor[S], exec.Status) {
	next := make([]exec.Monitor[S], 0, len(o.pending))
	for _, m := range o.pending {
		m2, status := m.Start(s)
		switch status {
		case exec.Accepted:
			return o, exec.Accepted
		case exec.Undetermined:
			next = append(next, m2)
		}
	}
	if len(next) == 0 {
		return o, exec.Rejected
	}
	return orMonitor[S]{pending: next}, exec.Undetermined
}

func (o orMonitor[S]) Observe(action string, nextState S, now prob.Rat) (exec.Monitor[S], exec.Status) {
	next := make([]exec.Monitor[S], 0, len(o.pending))
	for _, m := range o.pending {
		m2, status := m.Observe(action, nextState, now)
		switch status {
		case exec.Accepted:
			return o, exec.Accepted
		case exec.Undetermined:
			next = append(next, m2)
		}
	}
	if len(next) == 0 {
		return o, exec.Rejected
	}
	return orMonitor[S]{pending: next}, exec.Undetermined
}

func (o orMonitor[S]) AtEnd() exec.Status {
	for _, m := range o.pending {
		switch m.AtEnd() {
		case exec.Accepted:
			return exec.Accepted
		case exec.Undetermined:
			return exec.Undetermined
		}
	}
	return exec.Rejected
}

// notMonitor observes the complement of an event.
type notMonitor[S comparable] struct {
	inner exec.Monitor[S]
}

// Not returns the complement event.
func Not[S comparable](m exec.Monitor[S]) exec.Monitor[S] {
	return notMonitor[S]{inner: m}
}

func flip(s exec.Status) exec.Status {
	switch s {
	case exec.Accepted:
		return exec.Rejected
	case exec.Rejected:
		return exec.Accepted
	default:
		return exec.Undetermined
	}
}

func (n notMonitor[S]) Start(s S) (exec.Monitor[S], exec.Status) {
	inner, status := n.inner.Start(s)
	return notMonitor[S]{inner: inner}, flip(status)
}

func (n notMonitor[S]) Observe(action string, next S, now prob.Rat) (exec.Monitor[S], exec.Status) {
	inner, status := n.inner.Observe(action, next, now)
	return notMonitor[S]{inner: inner}, flip(status)
}

func (n notMonitor[S]) AtEnd() exec.Status { return flip(n.inner.AtEnd()) }
