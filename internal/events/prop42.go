package events

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/pa"
	"repro/internal/prob"
)

// Hypothesis is one (a_i, U_i, p_i) triple of Proposition 4.2: every step
// of the automaton labeled Action must give the set Pred probability at
// least MinProb.
type Hypothesis[S comparable] struct {
	Action  string
	Pred    Pred[S]
	MinProb prob.Rat
}

// CheckProp42Hypothesis verifies, over the reachable states of m (explored
// with the given limit; <= 0 means unlimited), the hypothesis of
// Proposition 4.2: for each i and each step (s, a_i, (Omega, F, P)) of M,
// P[U_i ∩ Omega] >= p_i. The actions must be pairwise distinct. On
// success, the proposition guarantees, for every execution automaton H of
// M (i.e. against every adversary):
//
//	P_H[first(a1,U1) ∩ ... ∩ first(an,Un)]  >=  p1 · ... · pn
//	P_H[next((a1,U1),...,(an,Un))]          >=  min(p1,...,pn)
//
// The returned error identifies the first violated hypothesis, if any.
func CheckProp42Hypothesis[S comparable](m *pa.Automaton[S], limit int, hyps ...Hypothesis[S]) error {
	seen := make(map[string]bool, len(hyps))
	for _, h := range hyps {
		if seen[h.Action] {
			return fmt.Errorf("events: duplicate action %q in Proposition 4.2 hypothesis", h.Action)
		}
		seen[h.Action] = true
	}
	states, err := m.Reachable(limit)
	if err != nil {
		return err
	}
	for _, s := range states {
		for _, step := range m.Steps(s) {
			for _, h := range hyps {
				if step.Action != h.Action {
					continue
				}
				got := step.Next.ProbOf(func(v S) bool { return h.Pred(v) })
				if got.Less(h.MinProb) {
					return fmt.Errorf("events: step %q from %v gives the target set probability %v < %v",
						h.Action, s, got, h.MinProb)
				}
			}
		}
	}
	return nil
}

// Prop42FirstBound returns the lower bound p1···pn that Proposition 4.2(1)
// guarantees for the intersection of the first events.
func Prop42FirstBound[S comparable](hyps ...Hypothesis[S]) prob.Rat {
	ps := make([]prob.Rat, len(hyps))
	for i, h := range hyps {
		ps[i] = h.MinProb
	}
	return prob.ProdRats(ps...)
}

// Prop42NextBound returns the lower bound min(p1,...,pn) that Proposition
// 4.2(2) guarantees for the next event. It panics on an empty hypothesis
// list.
func Prop42NextBound[S comparable](hyps ...Hypothesis[S]) prob.Rat {
	ps := make([]prob.Rat, len(hyps))
	for i, h := range hyps {
		ps[i] = h.MinProb
	}
	return prob.MinRats(ps...)
}

// FirstConjunction builds the monitor for the intersection event
// first(a1,U1) ∩ ... ∩ first(an,Un) of Proposition 4.2(1).
func FirstConjunction[S comparable](hyps ...Hypothesis[S]) exec.Monitor[S] {
	ms := make([]exec.Monitor[S], len(hyps))
	for i, h := range hyps {
		ms[i] = First(h.Action, h.Pred)
	}
	return And(ms...)
}

// NextOf builds the monitor for the event next((a1,U1),...,(an,Un)) of
// Proposition 4.2(2) from the hypothesis list.
func NextOf[S comparable](hyps ...Hypothesis[S]) (exec.Monitor[S], error) {
	pairs := make([]Pair[S], len(hyps))
	for i, h := range hyps {
		pairs[i] = Pair[S]{Action: h.Action, Pred: h.Pred}
	}
	return Next(pairs...)
}
