package events

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/exec"
	"repro/internal/pa"
	"repro/internal/prob"
)

// TestReachOnPatientConstruction is the cross-feature check of the
// paper's Section 2 timing story: apply the patient construction (with a
// fractional quantum) to an untimed automaton, and evaluate the
// time-bounded event schema e_{U',t} on it with exact rationals.
func TestReachOnPatientConstruction(t *testing.T) {
	// Untimed: "work" advances 0 -> 1 -> 2; 2 is the target.
	base := &pa.Automaton[int]{
		Name:  "three-steps",
		Start: []int{0},
		Steps: func(s int) []pa.Step[int] {
			if s >= 2 {
				return nil
			}
			return []pa.Step[int]{{Action: "work", Next: prob.Point(s + 1)}}
		},
	}
	// Quantum 1/2, increments of one quantum, horizon 6 quanta (time 3).
	timed, err := pa.Patient(base, prob.Half(), []int{1}, 6)
	if err != nil {
		t.Fatal(err)
	}

	// An adversary alternating passage and work: each work step happens
	// half a time unit after the previous, so the target is hit at time 1.
	alternating := adversary.HistoryDependent(timed, func(frag *pa.Fragment[pa.TimedState[int]], enabled []pa.Step[pa.TimedState[int]]) int {
		wantPassage := frag.Len()%2 == 0
		for i, st := range enabled {
			if (st.Action == pa.PassageAction(1)) == wantPassage {
				return i
			}
		}
		return 0
	})

	target := func(ts pa.TimedState[int]) bool { return ts.Base == 2 }
	h := exec.FromState(timed, alternating, pa.TimedState[int]{Base: 0})

	tests := []struct {
		deadline string
		want     string
	}{
		{deadline: "1", want: "1"},   // ν, work, ν, work at time exactly 1
		{deadline: "1/2", want: "0"}, // only one work step fits
		{deadline: "3", want: "1"},
	}
	for _, tt := range tests {
		iv, err := h.Prob(Reach(target, prob.MustParseRat(tt.deadline)), exec.EvalConfig{MaxDepth: 32})
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Exact() || iv.Lo.String() != tt.want {
			t.Errorf("deadline %s: P = %v, want %s", tt.deadline, iv, tt.want)
		}
	}
}
