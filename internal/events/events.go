// Package events implements the event schemas of Lynch, Saias and Segala
// (PODC 1994): functions that associate an event with every execution
// automaton of a probabilistic automaton (Definition 2.5).
//
// Each schema is an exec.Monitor, a persistent observer that classifies
// executions incrementally. The package provides the schemas used in the
// paper — e_{U',t} ("a state of U' is reached within time t", Definition
// 3.1), first(a, U) and next((a1,U1),...,(an,Un)) (Section 4) — together
// with boolean combinations and the hypothesis check of Proposition 4.2.
package events

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/prob"
)

// Pred is a state predicate, the extensional form of a set of states.
type Pred[S comparable] func(S) bool

// reach is the event schema e_{U',t} of Definition 3.1.
type reach[S comparable] struct {
	pred     Pred[S]
	deadline prob.Rat
}

// Reach returns the event schema e_{U',t}: the set of maximal executions
// in which a state satisfying pred is reached at a point of time at most
// deadline. The time-bound statements U --t,p--> U' of the paper are
// assertions about the probability of this event.
func Reach[S comparable](pred Pred[S], deadline prob.Rat) exec.Monitor[S] {
	return reach[S]{pred: pred, deadline: deadline}
}

func (r reach[S]) Start(s S) (exec.Monitor[S], exec.Status) {
	if r.pred(s) {
		return r, exec.Accepted
	}
	return r, exec.Undetermined
}

func (r reach[S]) Observe(_ string, next S, now prob.Rat) (exec.Monitor[S], exec.Status) {
	if now.Cmp(r.deadline) > 0 {
		// Time has passed the deadline without reaching the target; no
		// extension can be in the event.
		return r, exec.Rejected
	}
	if r.pred(next) {
		return r, exec.Accepted
	}
	return r, exec.Undetermined
}

func (r reach[S]) AtEnd() exec.Status { return exec.Rejected }

// first is the event schema first(a, U) of Section 4.
type first[S comparable] struct {
	action string
	pred   Pred[S]
}

// First returns the event schema first(a, U): the set of maximal
// executions in which either action a does not occur, or the state reached
// after its first occurrence satisfies pred. The paper uses it for claims
// such as "the first coin flip of process i yields left".
func First[S comparable](action string, pred Pred[S]) exec.Monitor[S] {
	return first[S]{action: action, pred: pred}
}

func (f first[S]) Start(S) (exec.Monitor[S], exec.Status) {
	return f, exec.Undetermined
}

func (f first[S]) Observe(action string, next S, _ prob.Rat) (exec.Monitor[S], exec.Status) {
	if action != f.action {
		return f, exec.Undetermined
	}
	if f.pred(next) {
		return f, exec.Accepted
	}
	return f, exec.Rejected
}

func (f first[S]) AtEnd() exec.Status { return exec.Accepted }

// Pair names one (action, state set) component of a next schema.
type Pair[S comparable] struct {
	Action string
	Pred   Pred[S]
}

// next implements the event schema next((a1,U1),...,(an,Un)).
type next[S comparable] struct {
	pairs []Pair[S]
}

// Next returns the event schema next((a1,U1),...,(an,Un)): the set of
// maximal executions in which either no listed action occurs, or, if a_i
// is the first listed action to occur, the state reached after it
// satisfies pred_i. The actions must be pairwise distinct. The paper uses
// it for claims such as "the first coin that is flipped yields left".
func Next[S comparable](pairs ...Pair[S]) (exec.Monitor[S], error) {
	seen := make(map[string]bool, len(pairs))
	for _, p := range pairs {
		if seen[p.Action] {
			return nil, fmt.Errorf("events: Next with duplicate action %q", p.Action)
		}
		seen[p.Action] = true
	}
	return next[S]{pairs: pairs}, nil
}

// MustNext is like Next but panics on duplicate actions; for statically
// known schemas.
func MustNext[S comparable](pairs ...Pair[S]) exec.Monitor[S] {
	m, err := Next(pairs...)
	if err != nil {
		panic(err)
	}
	return m
}

func (n next[S]) Start(S) (exec.Monitor[S], exec.Status) {
	return n, exec.Undetermined
}

func (n next[S]) Observe(action string, nextState S, _ prob.Rat) (exec.Monitor[S], exec.Status) {
	for _, p := range n.pairs {
		if p.Action == action {
			if p.Pred(nextState) {
				return n, exec.Accepted
			}
			return n, exec.Rejected
		}
	}
	return n, exec.Undetermined
}

func (n next[S]) AtEnd() exec.Status { return exec.Accepted }

// occurs accepts executions in which the action occurs at least once.
type occurs[S comparable] struct {
	action string
}

// Occurs returns the event "action a occurs at some point".
func Occurs[S comparable](action string) exec.Monitor[S] {
	return occurs[S]{action: action}
}

func (o occurs[S]) Start(S) (exec.Monitor[S], exec.Status) { return o, exec.Undetermined }

func (o occurs[S]) Observe(action string, _ S, _ prob.Rat) (exec.Monitor[S], exec.Status) {
	if action == o.action {
		return o, exec.Accepted
	}
	return o, exec.Undetermined
}

func (o occurs[S]) AtEnd() exec.Status { return exec.Rejected }

// invariant accepts executions along which pred holds in every state.
type invariant[S comparable] struct {
	pred Pred[S]
}

// Always returns the event "pred holds in every state of the execution".
// Note that its probability can only be bounded from above at a finite
// horizon (acceptance is decided at infinity); its complement via Not is
// the usual way to search for violations.
func Always[S comparable](pred Pred[S]) exec.Monitor[S] {
	return invariant[S]{pred: pred}
}

func (iv invariant[S]) Start(s S) (exec.Monitor[S], exec.Status) {
	if !iv.pred(s) {
		return iv, exec.Rejected
	}
	return iv, exec.Undetermined
}

func (iv invariant[S]) Observe(_ string, next S, _ prob.Rat) (exec.Monitor[S], exec.Status) {
	if !iv.pred(next) {
		return iv, exec.Rejected
	}
	return iv, exec.Undetermined
}

func (iv invariant[S]) AtEnd() exec.Status { return exec.Accepted }
