package events

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/exec"
	"repro/internal/pa"
	"repro/internal/prob"
)

// twoCoins is the system of Example 4.1 of the paper: processes P and Q
// each have one fair coin to flip. A state records each process's coin
// as "?" (not flipped), "H" or "T". The adversary chooses which process
// flips next, or halts.
type twoCoins struct {
	P, Q string
}

func twoCoinsAutomaton() *pa.Automaton[twoCoins] {
	return &pa.Automaton[twoCoins]{
		Name:  "two-coins",
		Start: []twoCoins{{P: "?", Q: "?"}},
		Steps: func(s twoCoins) []pa.Step[twoCoins] {
			var steps []pa.Step[twoCoins]
			if s.P == "?" {
				steps = append(steps, pa.Step[twoCoins]{
					Action: "flipP",
					Next:   prob.MustUniform(twoCoins{P: "H", Q: s.Q}, twoCoins{P: "T", Q: s.Q}),
				})
			}
			if s.Q == "?" {
				steps = append(steps, pa.Step[twoCoins]{
					Action: "flipQ",
					Next:   prob.MustUniform(twoCoins{P: s.P, Q: "H"}, twoCoins{P: s.P, Q: "T"}),
				})
			}
			return steps
		},
	}
}

func pHeads(s twoCoins) bool { return s.P == "H" }
func qTails(s twoCoins) bool { return s.Q == "T" }

// bothFlip schedules P then Q unconditionally.
func bothFlip(m *pa.Automaton[twoCoins]) adversary.Adversary[twoCoins] {
	return adversary.FirstEnabled(m)
}

// spiteful is the adversary of Example 4.1: it schedules P first, and
// schedules Q only when P's coin came up heads.
func spiteful(m *pa.Automaton[twoCoins]) adversary.Adversary[twoCoins] {
	return adversary.HistoryDependent(m, func(frag *pa.Fragment[twoCoins], enabled []pa.Step[twoCoins]) int {
		s := frag.Last()
		if s.P == "?" {
			for i, st := range enabled {
				if st.Action == "flipP" {
					return i
				}
			}
		}
		if s.P == "H" && s.Q == "?" {
			for i, st := range enabled {
				if st.Action == "flipQ" {
					return i
				}
			}
		}
		return -1 // halt: Q never flips unless P yielded heads
	})
}

func evalProb(t *testing.T, m *pa.Automaton[twoCoins], a adversary.Adversary[twoCoins], mon exec.Monitor[twoCoins]) prob.Rat {
	t.Helper()
	h := exec.FromState(m, a, twoCoins{P: "?", Q: "?"})
	iv, err := h.Prob(mon, exec.EvalConfig{})
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	if !iv.Exact() {
		t.Fatalf("interval %v not exact", iv)
	}
	return iv.Lo
}

func TestExample41FirstEvents(t *testing.T) {
	m := twoCoinsAutomaton()
	event := And(First("flipP", pHeads), First("flipQ", qTails))

	t.Run("both flip", func(t *testing.T) {
		got := evalProb(t, m, bothFlip(m), event)
		if !got.Equal(prob.NewRat(1, 4)) {
			t.Errorf("P[first ∩ first] = %v, want 1/4", got)
		}
	})
	t.Run("spiteful adversary still meets the 1/4 bound", func(t *testing.T) {
		// first(flipQ, tail) holds vacuously when Q never flips, so the
		// formal event is immune to the scheduling attack.
		got := evalProb(t, m, spiteful(m), event)
		if !got.Equal(prob.NewRat(1, 4)) {
			t.Errorf("P[first ∩ first] = %v, want 1/4", got)
		}
	})
	t.Run("the informal conditional reading is 1/2, not 1/4", func(t *testing.T) {
		// Example 4.1: conditioned on both coins being flipped, the
		// spiteful adversary pushes P[P=H and Q=T | both flipped] to 1/2.
		both := And(Occurs[twoCoins]("flipP"), Occurs[twoCoins]("flipQ"))
		joint := evalProb(t, m, spiteful(m), And(both, First("flipP", pHeads), First("flipQ", qTails)))
		flipped := evalProb(t, m, spiteful(m), both)
		if !flipped.Equal(prob.Half()) {
			t.Fatalf("P[both flipped] = %v, want 1/2", flipped)
		}
		cond := joint.Div(flipped)
		if !cond.Equal(prob.Half()) {
			t.Errorf("P[heads,tails | both flipped] = %v, want 1/2", cond)
		}
	})
}

func TestExample41NextEvent(t *testing.T) {
	m := twoCoinsAutomaton()
	event := MustNext(
		Pair[twoCoins]{Action: "flipP", Pred: pHeads},
		Pair[twoCoins]{Action: "flipQ", Pred: qTails},
	)
	for _, tt := range []struct {
		name string
		adv  adversary.Adversary[twoCoins]
	}{
		{name: "both flip", adv: bothFlip(m)},
		{name: "spiteful", adv: spiteful(m)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			got := evalProb(t, m, tt.adv, event)
			// Proposition 4.2(2) guarantees at least min(1/2, 1/2) = 1/2.
			if got.Less(prob.Half()) {
				t.Errorf("P[next] = %v, want >= 1/2", got)
			}
		})
	}
}

func TestFirstVerdicts(t *testing.T) {
	mon := First("flipP", pHeads)
	tests := []struct {
		name    string
		actions []string
		states  []twoCoins
		want    exec.Status
	}{
		{
			name:    "first occurrence satisfies",
			actions: []string{"flipQ", "flipP"},
			states:  []twoCoins{{P: "?", Q: "H"}, {P: "H", Q: "H"}},
			want:    exec.Accepted,
		},
		{
			name:    "first occurrence violates",
			actions: []string{"flipP"},
			states:  []twoCoins{{P: "T", Q: "?"}},
			want:    exec.Rejected,
		},
		{
			name:    "other actions leave it open",
			actions: []string{"flipQ"},
			states:  []twoCoins{{P: "?", Q: "T"}},
			want:    exec.Undetermined,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, status := exec.Monitor[twoCoins](mon).Start(twoCoins{P: "?", Q: "?"})
			for i, a := range tt.actions {
				if status != exec.Undetermined {
					break
				}
				m, status = m.Observe(a, tt.states[i], prob.Zero())
			}
			if status != tt.want {
				t.Errorf("status = %v, want %v", status, tt.want)
			}
		})
	}
	if got := mon.AtEnd(); got != exec.Accepted {
		t.Errorf("AtEnd = %v, want accepted (a never occurs)", got)
	}
}

func TestNextDuplicateActions(t *testing.T) {
	_, err := Next(
		Pair[twoCoins]{Action: "flip", Pred: pHeads},
		Pair[twoCoins]{Action: "flip", Pred: qTails},
	)
	if err == nil {
		t.Fatal("Next accepted duplicate actions")
	}
	if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("error %q does not mention duplicate", err)
	}
}

func TestReachMonitor(t *testing.T) {
	// Timed chain: tick advances time by one, the target is state 3.
	m := &pa.Automaton[int]{
		Start: []int{0},
		Steps: func(s int) []pa.Step[int] {
			if s >= 5 {
				return nil
			}
			return []pa.Step[int]{{Action: "tick", Next: prob.Point(s + 1)}}
		},
		Duration: func(a string) prob.Rat {
			if a == "tick" {
				return prob.One()
			}
			return prob.Zero()
		},
	}
	target := func(s int) bool { return s == 3 }

	tests := []struct {
		name     string
		deadline prob.Rat
		want     string
	}{
		{name: "deadline exactly met", deadline: prob.FromInt(3), want: "1"},
		{name: "deadline generous", deadline: prob.FromInt(10), want: "1"},
		{name: "deadline too tight", deadline: prob.FromInt(2), want: "0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := exec.FromState(m, adversary.FirstEnabled(m), 0)
			iv, err := h.Prob(Reach(target, tt.deadline), exec.EvalConfig{})
			if err != nil {
				t.Fatalf("Prob: %v", err)
			}
			if !iv.Exact() || iv.Lo.String() != tt.want {
				t.Errorf("P = %v, want %s", iv, tt.want)
			}
		})
	}
}

func TestReachAcceptsStartState(t *testing.T) {
	mon := Reach(func(s int) bool { return s == 0 }, prob.Zero())
	_, status := mon.Start(0)
	if status != exec.Accepted {
		t.Errorf("start state in target: status = %v, want accepted", status)
	}
}

func TestOccursAndAlways(t *testing.T) {
	m := twoCoinsAutomaton()
	gotOccurs := evalProb(t, m, spiteful(m), Occurs[twoCoins]("flipQ"))
	if !gotOccurs.Equal(prob.Half()) {
		t.Errorf("P[flipQ occurs] = %v, want 1/2 under spiteful adversary", gotOccurs)
	}

	// Always("P != T") fails exactly when P flips tails.
	gotAlways := evalProb(t, m, bothFlip(m), Always(func(s twoCoins) bool { return s.P != "T" }))
	if !gotAlways.Equal(prob.Half()) {
		t.Errorf("P[always P != T] = %v, want 1/2", gotAlways)
	}
}

func TestBooleanCombinators(t *testing.T) {
	m := twoCoinsAutomaton()
	headsP := First("flipP", pHeads)
	tailsQ := First("flipQ", qTails)

	t.Run("or", func(t *testing.T) {
		// P heads or Q tails fails only on (T, H): 3/4 under both-flip.
		got := evalProb(t, m, bothFlip(m), Or(headsP, tailsQ))
		if !got.Equal(prob.NewRat(3, 4)) {
			t.Errorf("P[or] = %v, want 3/4", got)
		}
	})
	t.Run("not", func(t *testing.T) {
		got := evalProb(t, m, bothFlip(m), Not(headsP))
		if !got.Equal(prob.Half()) {
			t.Errorf("P[not first(P,heads)] = %v, want 1/2", got)
		}
	})
	t.Run("complement law", func(t *testing.T) {
		ev := And(headsP, tailsQ)
		p := evalProb(t, m, spiteful(m), ev)
		q := evalProb(t, m, spiteful(m), Not(ev))
		if !p.Add(q).IsOne() {
			t.Errorf("P[e] + P[not e] = %v + %v != 1", p, q)
		}
	})
	t.Run("empty and accepts", func(t *testing.T) {
		got := evalProb(t, m, bothFlip(m), And[twoCoins]())
		if !got.IsOne() {
			t.Errorf("P[empty and] = %v, want 1", got)
		}
	})
	t.Run("empty or rejects", func(t *testing.T) {
		got := evalProb(t, m, bothFlip(m), Or[twoCoins]())
		if !got.IsZero() {
			t.Errorf("P[empty or] = %v, want 0", got)
		}
	})
}

func TestCheckProp42Hypothesis(t *testing.T) {
	m := twoCoinsAutomaton()
	hyps := []Hypothesis[twoCoins]{
		{Action: "flipP", Pred: pHeads, MinProb: prob.Half()},
		{Action: "flipQ", Pred: qTails, MinProb: prob.Half()},
	}
	t.Run("valid hypothesis", func(t *testing.T) {
		if err := CheckProp42Hypothesis(m, 0, hyps...); err != nil {
			t.Errorf("CheckProp42Hypothesis: %v", err)
		}
	})
	t.Run("overstated bound rejected", func(t *testing.T) {
		bad := []Hypothesis[twoCoins]{
			{Action: "flipP", Pred: pHeads, MinProb: prob.NewRat(2, 3)},
		}
		if err := CheckProp42Hypothesis(m, 0, bad...); err == nil {
			t.Error("hypothesis with overstated bound accepted")
		}
	})
	t.Run("duplicate actions rejected", func(t *testing.T) {
		dup := []Hypothesis[twoCoins]{
			{Action: "flipP", Pred: pHeads, MinProb: prob.Half()},
			{Action: "flipP", Pred: pHeads, MinProb: prob.Half()},
		}
		if err := CheckProp42Hypothesis(m, 0, dup...); err == nil {
			t.Error("duplicate hypothesis accepted")
		}
	})
	t.Run("bounds", func(t *testing.T) {
		if got := Prop42FirstBound(hyps...); !got.Equal(prob.NewRat(1, 4)) {
			t.Errorf("Prop42FirstBound = %v, want 1/4", got)
		}
		if got := Prop42NextBound(hyps...); !got.Equal(prob.Half()) {
			t.Errorf("Prop42NextBound = %v, want 1/2", got)
		}
	})
}

// TestProp42ConclusionAgainstAdversaries is the full statement of
// Proposition 4.2 on the two-coin system: for every adversary in a small
// but adversarial collection, the measured probabilities respect the
// guaranteed bounds.
func TestProp42ConclusionAgainstAdversaries(t *testing.T) {
	m := twoCoinsAutomaton()
	hyps := []Hypothesis[twoCoins]{
		{Action: "flipP", Pred: pHeads, MinProb: prob.Half()},
		{Action: "flipQ", Pred: qTails, MinProb: prob.Half()},
	}
	if err := CheckProp42Hypothesis(m, 0, hyps...); err != nil {
		t.Fatalf("hypothesis: %v", err)
	}
	firstEvent := FirstConjunction(hyps...)
	nextEvent, err := NextOf(hyps...)
	if err != nil {
		t.Fatal(err)
	}

	qFirst := adversary.HistoryDependent(m, func(frag *pa.Fragment[twoCoins], enabled []pa.Step[twoCoins]) int {
		for i, st := range enabled {
			if st.Action == "flipQ" {
				return i
			}
		}
		return 0
	})
	qOnlyIfPTails := adversary.HistoryDependent(m, func(frag *pa.Fragment[twoCoins], enabled []pa.Step[twoCoins]) int {
		s := frag.Last()
		if s.P == "?" {
			return 0
		}
		if s.P == "T" && s.Q == "?" {
			return 0
		}
		return -1
	})

	advs := map[string]adversary.Adversary[twoCoins]{
		"halt":              adversary.Halt[twoCoins](),
		"both flip":         bothFlip(m),
		"spiteful":          spiteful(m),
		"q first":           qFirst,
		"q only if p tails": qOnlyIfPTails,
	}
	for name, adv := range advs {
		t.Run(name, func(t *testing.T) {
			pFirst := evalProb(t, m, adv, firstEvent)
			if pFirst.Less(Prop42FirstBound(hyps...)) {
				t.Errorf("P[first ∩ first] = %v < 1/4 under %s", pFirst, name)
			}
			pNext := evalProb(t, m, adv, nextEvent)
			if pNext.Less(Prop42NextBound(hyps...)) {
				t.Errorf("P[next] = %v < 1/2 under %s", pNext, name)
			}
		})
	}
}
