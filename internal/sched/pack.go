package sched

// Packed is a fixed-width state fingerprint: 256 bits, enough for every
// case-study model to encode a full state losslessly. It is a plain
// comparable value, so it works as a map key and hashes in a handful of
// machine-word operations — the point of packing: the Monte Carlo
// engine's compiled cache (internal/sim.Compile) interns states by
// their Packed encoding instead of hashing the (much larger, often
// array-shaped) state values themselves.
type Packed [4]uint64

// Packer is implemented by models whose states admit a fixed-width
// packed encoding. PackState must be injective on the model's reachable
// states — two distinct reachable states must produce distinct Packed
// values — and purely functional, like the rest of the Model contract.
// Injectivity is the whole soundness argument for interning by Packed
// keys, so each implementation pins it with a trajectory-walking
// collision test next to the model.
//
// A model that does not implement Packer is interned by hashing the
// state value directly; Packer is a performance contract, never a
// semantic one.
type Packer[S comparable] interface {
	// PackState encodes s into its fixed-width fingerprint.
	PackState(s S) Packed
}
