package sched

// Packed is a fixed-width state fingerprint: 256 bits, enough for every
// case-study model to encode a full state losslessly. It is a plain
// comparable value, so it works as a map key and hashes in a handful of
// machine-word operations — the point of packing: the Monte Carlo
// engine's compiled cache (internal/sim.Compile) interns states by
// their Packed encoding instead of hashing the (much larger, often
// array-shaped) state values themselves.
type Packed [4]uint64

// Packer is implemented by models whose states admit a fixed-width
// packed encoding. PackState must be injective on the model's reachable
// states — two distinct reachable states must produce distinct Packed
// values — and purely functional, like the rest of the Model contract.
// Injectivity is the whole soundness argument for interning by Packed
// keys, so each implementation pins it with a trajectory-walking
// collision test next to the model.
//
// A model that does not implement Packer is interned by hashing the
// state value directly; Packer is a performance contract, never a
// semantic one.
type Packer[S comparable] interface {
	// PackState encodes s into its fixed-width fingerprint.
	PackState(s S) Packed
}

// ProductKey is the fixed-width fingerprint of a product State: the
// packed algorithm state plus the window bookkeeping verbatim. Injective
// whenever the base packing is (the bookkeeping fields are copied, not
// encoded), so it inherits the Packer soundness argument unchanged.
type ProductKey struct {
	Base Packed
	Owes uint16
	Left uint64
}

// ProductPacker lifts a base model's Packer to product states, for use as
// the interning key of on-the-fly exploration (mdp.ExplorePacked). It
// returns ok = false when the model does not implement Packer, in which
// case callers fall back to interning product states by value.
func ProductPacker[S comparable](m Model[S]) (func(State[S]) ProductKey, bool) {
	p, ok := m.(Packer[S])
	if !ok {
		return nil, false
	}
	return func(ps State[S]) ProductKey {
		return ProductKey{Base: p.PackState(ps.Base), Owes: ps.Owes, Left: ps.Left}
	}, true
}
