// Package sched digitizes the Unit-Time adversary schema of Section 6.2 of
// Lynch, Saias and Segala (PODC 1994).
//
// The paper's schema contains every adversary that (1) lets time diverge
// and (2) schedules every ready process within time 1 of it being ready.
// For mechanized worst-case analysis, this package quantizes time into
// unit windows separated by "tick" actions and builds a product automaton
// whose remaining nondeterminism is exactly the adversary's:
//
//   - step(i): process i performs one of its enabled algorithm moves. A
//     process may take at most StepsPerWindow such moves per window
//     (arbitrary speed is recovered as StepsPerWindow grows).
//   - a user move (try/exit in Lehmann–Rabin): always available to the
//     adversary and exempt from the unit-time obligation, matching the
//     paper's treatment of try_i and exit_i as user-controlled.
//   - tick: ends the window, allowed only when every process that owed a
//     step (ready at the start of the window) has taken one.
//
// A process that becomes ready mid-window owes its step only from the
// next window boundary, so a ready process runs at most one full window —
// time at most 1 — without stepping, exactly the dense-time constraint.
// Minimizing reach probability over the strategies of the product MDP
// (package mdp) is then the digitized analogue of taking the infimum over
// the Unit-Time schema. The schema is execution-closed in the sense of
// Definition 3.3: membership constrains only the future scheduling
// pattern, never the identity of the past, and the product state carries
// all obligation bookkeeping, so suffix adversaries remain members.
package sched

import (
	"errors"
	"fmt"

	"repro/internal/pa"
	"repro/internal/prob"
)

// MaxProcs is the largest number of processes a product can track; the
// per-window budgets are packed four bits per process into one word.
const MaxProcs = 16

// MaxStepsPerWindow is the largest per-window speed bound.
const MaxStepsPerWindow = 15

// TickAction labels the time-passage action of the product automaton; it
// is the only action with nonzero (unit) duration.
const TickAction = "tick"

// Model describes a multi-process randomized algorithm to be scheduled.
// Implementations must be purely functional: Moves and UserMoves must not
// retain or mutate state values.
type Model[S comparable] interface {
	// Name identifies the algorithm.
	Name() string
	// NumProcs returns the number of processes.
	NumProcs() int
	// Start returns the start states.
	Start() []S
	// Moves returns the algorithm steps process i can perform from s. An
	// empty result means the process is not ready (it enables no action
	// subject to the unit-time constraint).
	Moves(s S, i int) []pa.Step[S]
	// UserMoves returns the steps of process i controlled by the user
	// (e.g. try and exit in Lehmann–Rabin), which the adversary may
	// schedule at any moment but is never obliged to.
	UserMoves(s S, i int) []pa.Step[S]
}

// Config selects the digitization granularity.
type Config struct {
	// StepsPerWindow bounds how many algorithm steps one process may take
	// within a single time window. 1 is the classic round model; larger
	// values approximate arbitrarily fast processes.
	StepsPerWindow int
}

// State is a product state: the algorithm state plus the window
// bookkeeping of the digitized Unit-Time constraint.
type State[S comparable] struct {
	// Base is the algorithm state.
	Base S
	// Owes has bit i set when process i was ready at the last window
	// boundary and has not stepped since; tick waits for these.
	Owes uint16
	// Left packs, four bits per process, how many more steps each process
	// may take before the next tick.
	Left uint64
}

func left(packed uint64, i int) int { return int(packed>>(4*i)) & 0xF }
func setLeft(packed uint64, i, v int) uint64 {
	shift := 4 * i
	return (packed &^ (0xF << shift)) | uint64(v)<<shift
}

// Product builds the digitized-scheduler product automaton of the model.
// Its nondeterministic choices are exactly the adversary's; resolving them
// optimally in the resulting MDP quantifies over the digitized Unit-Time
// schema.
func Product[S comparable](m Model[S], cfg Config) (*pa.Automaton[State[S]], error) {
	n := m.NumProcs()
	if n <= 0 || n > MaxProcs {
		return nil, fmt.Errorf("sched: %d processes outside 1..%d", n, MaxProcs)
	}
	k := cfg.StepsPerWindow
	if k <= 0 || k > MaxStepsPerWindow {
		return nil, fmt.Errorf("sched: StepsPerWindow %d outside 1..%d", k, MaxStepsPerWindow)
	}

	fullBudget := uint64(0)
	for i := 0; i < n; i++ {
		fullBudget = setLeft(fullBudget, i, k)
	}

	readyMask := func(s S) uint16 {
		var mask uint16
		for i := 0; i < n; i++ {
			if len(m.Moves(s, i)) > 0 {
				mask |= 1 << i
			}
		}
		return mask
	}

	starts := make([]State[S], 0, len(m.Start()))
	for _, s := range m.Start() {
		starts = append(starts, State[S]{Base: s, Owes: readyMask(s), Left: fullBudget})
	}

	steps := func(ps State[S]) []pa.Step[State[S]] {
		var out []pa.Step[State[S]]

		// Algorithm steps, budget permitting.
		for i := 0; i < n; i++ {
			budget := left(ps.Left, i)
			if budget == 0 {
				continue
			}
			moves := m.Moves(ps.Base, i)
			if len(moves) == 0 {
				continue
			}
			owes := ps.Owes &^ (1 << i)
			newLeft := setLeft(ps.Left, i, budget-1)
			for _, mv := range moves {
				out = append(out, pa.Step[State[S]]{
					Action: mv.Action,
					Next: prob.MapDist(mv.Next, func(b S) State[S] {
						return State[S]{Base: b, Owes: owes, Left: newLeft}
					}),
				})
			}
		}

		// User moves: always schedulable, no obligations touched.
		for i := 0; i < n; i++ {
			for _, mv := range m.UserMoves(ps.Base, i) {
				out = append(out, pa.Step[State[S]]{
					Action: mv.Action,
					Next: prob.MapDist(mv.Next, func(b S) State[S] {
						return State[S]{Base: b, Owes: ps.Owes, Left: ps.Left}
					}),
				})
			}
		}

		// Tick: allowed when no currently-ready process still owes a step.
		if ps.Owes&readyMask(ps.Base) == 0 {
			out = append(out, pa.Step[State[S]]{
				Action: TickAction,
				Next: prob.Point(State[S]{
					Base: ps.Base,
					Owes: readyMask(ps.Base),
					Left: fullBudget,
				}),
			})
		}
		return out
	}

	return &pa.Automaton[State[S]]{
		Name:  fmt.Sprintf("%s/unit-time(k=%d)", m.Name(), k),
		Start: starts,
		Steps: steps,
		Duration: func(a string) prob.Rat {
			if a == TickAction {
				return prob.One()
			}
			return prob.Zero()
		},
	}, nil
}

// ErrNoStates is returned by Lift helpers on empty input.
var ErrNoStates = errors.New("sched: no states")

// LiftPred lifts a predicate on algorithm states to product states.
func LiftPred[S comparable](pred func(S) bool) func(State[S]) bool {
	return func(ps State[S]) bool { return pred(ps.Base) }
}
