package sched

import (
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
)

// counters is a toy model for exercising the product semantics: each of
// two processes increments its own counter mod 4 as its algorithm step.
// Process 0 additionally has a user move resetting its counter, and a
// process stops being ready once its counter reaches ceiling.
type counters struct {
	ceiling uint8
}

type cState struct {
	A, B uint8
}

func (c *counters) Name() string    { return "counters" }
func (c *counters) NumProcs() int   { return 2 }
func (c *counters) Start() []cState { return []cState{{}} }

func (c *counters) Moves(s cState, i int) []pa.Step[cState] {
	val := s.A
	if i == 1 {
		val = s.B
	}
	if val >= c.ceiling {
		return nil // not ready
	}
	next := s
	if i == 0 {
		next.A++
	} else {
		next.B++
	}
	action := "incA"
	if i == 1 {
		action = "incB"
	}
	return []pa.Step[cState]{{Action: action, Next: prob.Point(next)}}
}

func (c *counters) UserMoves(s cState, i int) []pa.Step[cState] {
	if i != 0 || s.A == 0 {
		return nil
	}
	return []pa.Step[cState]{{Action: "reset", Next: prob.Point(cState{A: 0, B: s.B})}}
}

func stepByAction[S comparable](t *testing.T, auto *pa.Automaton[State[S]], ps State[S], action string) State[S] {
	t.Helper()
	for _, step := range auto.Steps(ps) {
		if step.Action == action {
			next, ok := step.Next.IsPoint()
			if !ok {
				t.Fatalf("step %q not deterministic", action)
			}
			return next
		}
	}
	t.Fatalf("no step %q enabled in %v; have %v", action, ps, actionsOf(auto, ps))
	return State[S]{}
}

func actionsOf[S comparable](auto *pa.Automaton[State[S]], ps State[S]) []string {
	var out []string
	for _, step := range auto.Steps(ps) {
		out = append(out, step.Action)
	}
	return out
}

func hasAction[S comparable](auto *pa.Automaton[State[S]], ps State[S], action string) bool {
	for _, step := range auto.Steps(ps) {
		if step.Action == action {
			return true
		}
	}
	return false
}

func TestProductValidation(t *testing.T) {
	model := &counters{ceiling: 4}
	if _, err := Product[cState](model, Config{StepsPerWindow: 0}); err == nil {
		t.Error("StepsPerWindow 0 accepted")
	}
	if _, err := Product[cState](model, Config{StepsPerWindow: MaxStepsPerWindow + 1}); err == nil {
		t.Error("oversized StepsPerWindow accepted")
	}
}

func TestProductStartObligations(t *testing.T) {
	model := &counters{ceiling: 4}
	auto, err := Product[cState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Start) != 1 {
		t.Fatalf("got %d start states", len(auto.Start))
	}
	start := auto.Start[0]
	if start.Owes != 0b11 {
		t.Errorf("start Owes = %b, want 11 (both processes ready)", start.Owes)
	}
	if hasAction(auto, start, TickAction) {
		t.Error("tick enabled while both processes owe their step")
	}
}

func TestProductWindowDiscipline(t *testing.T) {
	model := &counters{ceiling: 4}
	auto, err := Product[cState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := auto.Start[0]

	// Process 0 steps; process 1 still owes, so no tick yet and process 0
	// has exhausted its window budget.
	ps = stepByAction(t, auto, ps, "incA")
	if ps.Base.A != 1 {
		t.Errorf("A = %d, want 1", ps.Base.A)
	}
	if ps.Owes != 0b10 {
		t.Errorf("Owes = %b, want 10", ps.Owes)
	}
	if hasAction(auto, ps, "incA") {
		t.Error("process 0 can step twice in one window with k=1")
	}
	if hasAction(auto, ps, TickAction) {
		t.Error("tick enabled while process 1 owes")
	}

	// Process 1 steps; now the tick is enabled and refills budgets.
	ps = stepByAction(t, auto, ps, "incB")
	if !hasAction(auto, ps, TickAction) {
		t.Fatal("tick not enabled after both processes stepped")
	}
	ps = stepByAction(t, auto, ps, TickAction)
	if ps.Owes != 0b11 {
		t.Errorf("Owes after tick = %b, want 11", ps.Owes)
	}
	if !hasAction(auto, ps, "incA") || !hasAction(auto, ps, "incB") {
		t.Error("budgets not refilled by tick")
	}
}

func TestProductSpeedBound(t *testing.T) {
	model := &counters{ceiling: 8}
	auto, err := Product[cState](model, Config{StepsPerWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	ps := auto.Start[0]
	for i := 0; i < 3; i++ {
		if !hasAction(auto, ps, "incA") {
			t.Fatalf("step %d: incA not available with k=3", i)
		}
		ps = stepByAction(t, auto, ps, "incA")
	}
	if hasAction(auto, ps, "incA") {
		t.Error("process 0 exceeded 3 steps per window")
	}
}

func TestProductUnreadyProcessDoesNotBlockTick(t *testing.T) {
	// With ceiling 0, no process is ever ready: tick must cycle freely.
	model := &counters{ceiling: 0}
	auto, err := Product[cState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := auto.Start[0]
	if ps.Owes != 0 {
		t.Errorf("Owes = %b, want 0 for unready processes", ps.Owes)
	}
	if !hasAction(auto, ps, TickAction) {
		t.Fatal("tick not enabled with no ready process")
	}
	ps = stepByAction(t, auto, ps, TickAction)
	if !hasAction(auto, ps, TickAction) {
		t.Error("tick not re-enabled after tick")
	}
}

func TestProductMidWindowReadinessGraceWindow(t *testing.T) {
	// Process 0 ready (A < 1), process 1 not ready until the user resets…
	// here instead: process 1 becomes ready only after process 0's step?
	// The counters model cannot express that, so emulate with ceiling 1:
	// after incA, process 0 becomes unready; its owed bit was cleared by
	// stepping, so the tick proceeds.
	model := &counters{ceiling: 1}
	auto, err := Product[cState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := auto.Start[0]
	ps = stepByAction(t, auto, ps, "incA")
	ps = stepByAction(t, auto, ps, "incB")
	if !hasAction(auto, ps, TickAction) {
		t.Fatal("tick blocked after all ready processes stepped")
	}
	// The user resets process 0's counter mid-window: process 0 is ready
	// again but does NOT owe a step this window (it became ready
	// mid-window), so tick stays enabled — the grace-window semantics.
	ps = stepByAction(t, auto, ps, "reset")
	if ps.Owes&1 != 0 {
		t.Error("mid-window readiness created an immediate obligation")
	}
	if !hasAction(auto, ps, TickAction) {
		t.Error("tick blocked by a process that became ready mid-window")
	}
	// After the tick, the obligation is on.
	ps = stepByAction(t, auto, ps, TickAction)
	if ps.Owes&1 == 0 {
		t.Error("obligation not recorded at the window boundary")
	}
	if hasAction(auto, ps, TickAction) {
		t.Error("tick enabled while the newly-ready process owes its step")
	}
}

func TestProductUserMovesKeepBudget(t *testing.T) {
	model := &counters{ceiling: 4}
	auto, err := Product[cState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := auto.Start[0]
	ps = stepByAction(t, auto, ps, "incA")
	before := ps
	ps = stepByAction(t, auto, ps, "reset")
	if ps.Left != before.Left || ps.Owes != before.Owes {
		t.Error("user move changed window bookkeeping")
	}
}

func TestProductDuration(t *testing.T) {
	model := &counters{ceiling: 4}
	auto, err := Product[cState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := auto.DurationOf(TickAction); !got.IsOne() {
		t.Errorf("tick duration = %v, want 1", got)
	}
	if got := auto.DurationOf("incA"); !got.IsZero() {
		t.Errorf("incA duration = %v, want 0", got)
	}
}

func TestProductProbabilisticMove(t *testing.T) {
	// A model with one coin-flipping process: the product must preserve
	// branch probabilities while updating bookkeeping uniformly.
	model := &coinModel{}
	auto, err := Product[coinState](model, Config{StepsPerWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	ps := auto.Start[0]
	steps := auto.Steps(ps)
	var flip *pa.Step[State[coinState]]
	for i := range steps {
		if steps[i].Action == "flip" {
			flip = &steps[i]
		}
	}
	if flip == nil {
		t.Fatal("flip step missing")
	}
	if flip.Next.Len() != 2 {
		t.Fatalf("flip has %d outcomes, want 2", flip.Next.Len())
	}
	for _, o := range flip.Next.Outcomes() {
		if !o.Prob.Equal(prob.Half()) {
			t.Errorf("branch probability %v, want 1/2", o.Prob)
		}
		if o.Value.Owes != 0 {
			t.Errorf("branch Owes = %b, want 0", o.Value.Owes)
		}
	}
}

type coinState struct {
	Done  bool
	Heads bool
}

type coinModel struct{}

func (c *coinModel) Name() string       { return "coin" }
func (c *coinModel) NumProcs() int      { return 1 }
func (c *coinModel) Start() []coinState { return []coinState{{}} }

func (c *coinModel) Moves(s coinState, i int) []pa.Step[coinState] {
	if s.Done {
		return nil
	}
	return []pa.Step[coinState]{{
		Action: "flip",
		Next: prob.MustUniform(
			coinState{Done: true, Heads: true},
			coinState{Done: true, Heads: false},
		),
	}}
}

func (c *coinModel) UserMoves(coinState, int) []pa.Step[coinState] { return nil }

func TestLiftPred(t *testing.T) {
	pred := LiftPred(func(s cState) bool { return s.A > 0 })
	if pred(State[cState]{Base: cState{A: 0}}) {
		t.Error("lifted predicate true on A=0")
	}
	if !pred(State[cState]{Base: cState{A: 1}, Owes: 3, Left: 99}) {
		t.Error("lifted predicate ignored base state")
	}
}
