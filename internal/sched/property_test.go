package sched

import (
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
)

// randModel is a pseudo-random two-process model driven by a seed: each
// process's readiness and successor pattern is derived from hashing the
// state, giving varied but deterministic shapes for property testing.
type randModel struct {
	seed uint32
}

type rmState struct {
	A, B uint8
}

func (m *randModel) Name() string     { return "rand" }
func (m *randModel) NumProcs() int    { return 2 }
func (m *randModel) Start() []rmState { return []rmState{{}} }

func (m *randModel) hash(s rmState, i int) uint32 {
	x := m.seed ^ uint32(s.A)<<8 ^ uint32(s.B)<<16 ^ uint32(i)<<24
	x ^= x >> 13
	x *= 0x85ebca6b
	x ^= x >> 16
	return x
}

func (m *randModel) Moves(s rmState, i int) []pa.Step[rmState] {
	h := m.hash(s, i)
	if h%4 == 0 {
		return nil // not ready in this state
	}
	next := s
	if i == 0 {
		next.A = uint8((uint32(s.A) + 1 + h%3) % 16)
	} else {
		next.B = uint8((uint32(s.B) + 1 + h%3) % 16)
	}
	if h%3 == 0 {
		other := next
		if i == 0 {
			other.A = (other.A + 1) % 16
		} else {
			other.B = (other.B + 1) % 16
		}
		if other != next {
			return []pa.Step[rmState]{{
				Action: "step",
				Next:   prob.MustUniform(next, other),
			}}
		}
	}
	return []pa.Step[rmState]{{Action: "step", Next: prob.Point(next)}}
}

func (m *randModel) UserMoves(rmState, int) []pa.Step[rmState] { return nil }

// TestProductInvariants explores the products of many pseudo-random
// models and checks the structural invariants of the digitized Unit-Time
// construction in every reachable state:
//
//   - a tick is enabled iff no currently-ready process owes a step;
//   - an owed process always has budget (owes ⇒ Left > 0);
//   - budgets never exceed k;
//   - some choice is always enabled (the product has no deadlocks).
func TestProductInvariants(t *testing.T) {
	for seed := uint32(1); seed <= 40; seed++ {
		for _, k := range []int{1, 2, 3} {
			model := &randModel{seed: seed}
			auto, err := Product[rmState](model, Config{StepsPerWindow: k})
			if err != nil {
				t.Fatal(err)
			}
			states, err := auto.Reachable(20000)
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			for _, ps := range states {
				steps := auto.Steps(ps)
				if len(steps) == 0 {
					t.Fatalf("seed %d k %d: deadlocked product state %v", seed, k, ps)
				}
				var readyMask uint16
				for i := 0; i < 2; i++ {
					if len(model.Moves(ps.Base, i)) > 0 {
						readyMask |= 1 << i
					}
					budget := int(ps.Left>>(4*i)) & 0xF
					if budget > k {
						t.Fatalf("seed %d k %d: budget %d exceeds k at %v", seed, k, budget, ps)
					}
					owes := ps.Owes&(1<<i) != 0
					if owes && budget == 0 {
						t.Fatalf("seed %d k %d: owed process %d without budget at %v", seed, k, i, ps)
					}
				}
				tickEnabled := false
				for _, st := range steps {
					if st.Action == TickAction {
						tickEnabled = true
					}
				}
				wantTick := ps.Owes&readyMask == 0
				if tickEnabled != wantTick {
					t.Fatalf("seed %d k %d: tick enabled = %t, want %t at %v (ready %b)",
						seed, k, tickEnabled, wantTick, ps, readyMask)
				}
			}
		}
	}
}

// TestProductTimeDivergence checks that from every reachable product
// state a tick remains reachable — the adversary can always let time
// advance (no induced Zeno trap).
func TestProductTimeDivergence(t *testing.T) {
	model := &randModel{seed: 7}
	auto, err := Product[rmState](model, Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	states, err := auto.Reachable(20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range states {
		// Walk greedily: step owed processes until the tick appears;
		// bounded by total budget.
		cur := ps
		for hop := 0; hop < 16; hop++ {
			var tick bool
			steps := auto.Steps(cur)
			for _, st := range steps {
				if st.Action == TickAction {
					tick = true
					break
				}
			}
			if tick {
				break
			}
			if hop == 15 {
				t.Fatalf("no tick reachable from %v", ps)
			}
			cur = steps[0].Next.Support()[0]
		}
	}
}
