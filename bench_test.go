// Benchmark harness: one benchmark per experiment row of DESIGN.md's
// experiment index (E1–E15). Each benchmark regenerates the corresponding
// paper quantity — the five arrows of Section 6.2, the composed
// T --13,1/8--> C, the expected-time bounds, the Proposition 4.2 /
// Example 4.1 independence results, the digitization ablation, the
// qualitative baseline, and the Monte Carlo scaling run — and asserts the
// paper's bound on every iteration, so a regression that breaks the
// reproduction fails the bench.
package timedpa_test

import (
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/mdp"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Shared fixtures: the n=3 analyses are built once; building them is
// benchmarked separately in BenchmarkEnumerateProduct.
var (
	lrOnce sync.Once
	lrK1   *dining.Analysis
	lrK2   *dining.Analysis
	elN3   *election.Analysis
)

func fixtures(b *testing.B) (*dining.Analysis, *dining.Analysis, *election.Analysis) {
	b.Helper()
	lrOnce.Do(func() {
		var err error
		if lrK1, err = dining.NewAnalysis(3, 1, 0); err != nil {
			b.Fatal(err)
		}
		if lrK2, err = dining.NewAnalysis(3, 2, 0); err != nil {
			b.Fatal(err)
		}
		if elN3, err = election.NewAnalysis(3, 1, 0); err != nil {
			b.Fatal(err)
		}
	})
	return lrK1, lrK2, elN3
}

// benchArrow checks one paper arrow (by index into PaperStatements) on
// every iteration and asserts it holds.
func benchArrow(b *testing.B, idx int) {
	b.Helper()
	a, _, _ := fixtures(b)
	st := a.PaperStatements()[idx]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.CheckStatement(a.MDP, a.Index, st)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Holds {
			b.Fatalf("paper statement fails: %s", r)
		}
	}
}

// E2 (Proposition A.3): T --2,1--> RT∪C.
func BenchmarkArrowT_RT(b *testing.B) { benchArrow(b, 0) }

// E3 (Proposition A.15): RT --3,1--> F∪G∪P.
func BenchmarkArrowRT_FGP(b *testing.B) { benchArrow(b, 1) }

// E4 (Proposition A.14): F --2,1/2--> G∪P.
func BenchmarkArrowF_GP(b *testing.B) { benchArrow(b, 2) }

// E5 (Proposition A.11): G --5,1/4--> P.
func BenchmarkArrowG_P(b *testing.B) { benchArrow(b, 3) }

// E1 (Proposition A.1): P --1,1--> C.
func BenchmarkArrowP_C(b *testing.B) { benchArrow(b, 4) }

// E6: the Section 6.2 derivation — check all five premises and compose
// them into T --13,1/8--> C.
func BenchmarkComposedT_C(b *testing.B) {
	a, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, err := a.BuildPaperProof()
		if err != nil {
			b.Fatal(err)
		}
		if !proof.Stmt.Prob.Equal(prob.NewRat(1, 8)) || !proof.Stmt.Time.Equal(prob.FromInt(13)) {
			b.Fatalf("composed statement %s", proof.Stmt)
		}
	}
}

// E6 (direct): model-check T --13,1/8--> C at horizon 13 in one shot.
func BenchmarkDirectT_C(b *testing.B) {
	a, _, _ := fixtures(b)
	st := a.ComposedStatement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.CheckStatement(a.MDP, a.Index, st)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Holds {
			b.Fatalf("composed statement fails directly: %s", r)
		}
	}
}

// E7a: the expected-time recurrence of Section 6.2 (E[V] = 60, bound 63).
func BenchmarkExpectedTimeRecurrence(b *testing.B) {
	a, _, _ := fixtures(b)
	for i := 0; i < b.N; i++ {
		total, err := a.ExpectedTimeBound()
		if err != nil {
			b.Fatal(err)
		}
		if !total.Equal(prob.FromInt(63)) {
			b.Fatalf("bound = %v, want 63", total)
		}
	}
}

// E7b: the measured worst-case expected time via value iteration.
func BenchmarkExpectedTimeMDP(b *testing.B) {
	a, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst, _, err := a.WorstExpectedTime()
		if err != nil {
			b.Fatal(err)
		}
		if worst > 63 {
			b.Fatalf("worst expected time %.4f exceeds 63", worst)
		}
	}
}

// twoCoins is the Example 4.1 system for E8/E9.
type twoCoins struct{ P, Q string }

func twoCoinsAutomaton() *pa.Automaton[twoCoins] {
	return &pa.Automaton[twoCoins]{
		Name:  "two-coins",
		Start: []twoCoins{{P: "?", Q: "?"}},
		Steps: func(s twoCoins) []pa.Step[twoCoins] {
			var steps []pa.Step[twoCoins]
			if s.P == "?" {
				steps = append(steps, pa.Step[twoCoins]{
					Action: "flipP",
					Next:   prob.MustUniform(twoCoins{P: "H", Q: s.Q}, twoCoins{P: "T", Q: s.Q}),
				})
			}
			if s.Q == "?" {
				steps = append(steps, pa.Step[twoCoins]{
					Action: "flipQ",
					Next:   prob.MustUniform(twoCoins{P: s.P, Q: "H"}, twoCoins{P: s.P, Q: "T"}),
				})
			}
			return steps
		},
	}
}

// E8 (Proposition 4.2): exact evaluation of first∩first and next against
// an adaptive adversary, asserting the guaranteed bounds.
func BenchmarkFirstNext(b *testing.B) {
	m := twoCoinsAutomaton()
	hyps := []events.Hypothesis[twoCoins]{
		{Action: "flipP", Pred: func(s twoCoins) bool { return s.P == "H" }, MinProb: prob.Half()},
		{Action: "flipQ", Pred: func(s twoCoins) bool { return s.Q == "T" }, MinProb: prob.Half()},
	}
	firstEvent := events.FirstConjunction(hyps...)
	nextEvent, err := events.NextOf(hyps...)
	if err != nil {
		b.Fatal(err)
	}
	adv := adversary.FirstEnabled(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := exec.FromState(m, adv, twoCoins{P: "?", Q: "?"})
		ivF, err := h.Prob(firstEvent, exec.EvalConfig{})
		if err != nil {
			b.Fatal(err)
		}
		ivN, err := h.Prob(nextEvent, exec.EvalConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if ivF.Lo.Less(prob.NewRat(1, 4)) || ivN.Lo.Less(prob.Half()) {
			b.Fatalf("Proposition 4.2 bounds violated: %v, %v", ivF, ivN)
		}
	}
}

// E9 (Example 4.1): the adaptive adversary shifts the conditional
// probability from 1/4 to 1/2 while the formal event stays at 1/4.
func BenchmarkExample41(b *testing.B) {
	m := twoCoinsAutomaton()
	spiteful := adversary.HistoryDependent(m, func(frag *pa.Fragment[twoCoins], enabled []pa.Step[twoCoins]) int {
		s := frag.Last()
		if s.P == "?" {
			return 0
		}
		if s.P == "H" && s.Q == "?" {
			return 0
		}
		return -1
	})
	event := events.And(
		events.First("flipP", func(s twoCoins) bool { return s.P == "H" }),
		events.First("flipQ", func(s twoCoins) bool { return s.Q == "T" }),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := exec.FromState(m, spiteful, twoCoins{P: "?", Q: "?"})
		iv, err := h.Prob(event, exec.EvalConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !iv.Exact() || !iv.Lo.Equal(prob.NewRat(1, 4)) {
			b.Fatalf("Example 4.1 probability = %v, want exactly 1/4", iv)
		}
	}
}

// E10 (ablation): the G --5,1/4--> P arrow under the faster k=2
// digitization — the adversary gains speed, the bound must still hold.
func BenchmarkAblationSpeedK(b *testing.B) {
	_, a2, _ := fixtures(b)
	st := a2.PaperStatements()[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.CheckStatement(a2.MDP, a2.Index, st)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Holds {
			b.Fatalf("G arrow fails at k=2: %s", r)
		}
	}
}

// E11 (baseline): the Zuck–Pnueli-style qualitative analysis — every
// T-state reaches C with probability 1 under every adversary, with no
// time bound attached.
func BenchmarkBaselineLiveness(b *testing.B) {
	a, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, almostSure := a.QualitativeProgress()
		if total == 0 || total != almostSure {
			b.Fatalf("qualitative progress %d/%d", almostSure, total)
		}
	}
}

// E12 (scaling): Monte Carlo expected time to C at n=10 under the
// spiteful dense-time scheduler; the paper's bound of 63 must hold with
// slack.
func BenchmarkSimExpectedTime(b *testing.B) {
	const n = 10
	model := dining.MustNew(n)
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunOnce[dining.State](model, dining.Spiteful(), dining.InC, opts, rng)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reached || res.ReachedAt > 63 {
			b.Fatalf("run did not reach C within the documented bound: %+v", res)
		}
	}
}

// E12 addendum (parallel scaling): trial throughput of the sharded Monte
// Carlo engine on the Lehmann–Rabin n=8 reach-probability curve. The pool is
// sized by GOMAXPROCS, so `go test -bench ParallelTrials -cpu 1,4`
// records the 1-vs-4-worker scaling reported in EXPERIMENTS.md. Every
// iteration asserts the sharded curve is bit-identical to a one-worker
// reference — the engine's reproducibility guarantee — and the custom
// trials/s metric is the quantity the scaling row tracks. The model is
// compiled once outside the timer (as the CLIs do), so the loop measures
// the warm-cache hot path.
func BenchmarkParallelTrials(b *testing.B) {
	const (
		n      = 8
		trials = 256
	)
	model := sim.Compile[dining.State](dining.MustNew(n))
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }
	deadlines := make([]float64, 16)
	for i := range deadlines {
		deadlines[i] = float64(i + 1)
	}
	ref, _, err := sim.EstimateCurveParallel[dining.State](context.Background(), model, mk, dining.InC, deadlines, trials, opts,
		sim.ParallelOptions{Workers: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := sim.EstimateCurveParallel[dining.State](context.Background(), model, mk, dining.InC, deadlines, trials, opts,
			sim.ParallelOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			b.Fatal("sharded curve differs from the 1-worker reference")
		}
	}
	b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// E12 addendum (hot-path ablation ladder): the same n=8 curve workload
// as BenchmarkParallelTrials, one rung per engine optimisation so
// EXPERIMENTS.md can attribute the throughput to its parts. Rungs are
// cumulative: uncompiled baseline; compiled cache sampling by cumulative
// scan (Options.BitCompat); alias-table sampling; packed state
// interning (sched.Packer); per-worker trial arenas. The last rung is
// the default engine configuration.
func BenchmarkTrialAblation(b *testing.B) {
	const (
		n      = 8
		trials = 256
	)
	raw := dining.MustNew(n)
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }
	deadlines := make([]float64, 16)
	for i := range deadlines {
		deadlines[i] = float64(i + 1)
	}
	rungs := []struct {
		name      string
		model     sched.Model[dining.State]
		noCompile bool
		bitCompat bool
		noArena   bool
	}{
		// Compiled rungs pre-compile outside the timer, as the CLIs do.
		{name: "uncompiled", model: raw, noCompile: true, noArena: true},
		{name: "scan", model: sim.Compile[dining.State](unpackedModel[dining.State]{m: raw}), bitCompat: true, noArena: true},
		{name: "alias", model: sim.Compile[dining.State](unpackedModel[dining.State]{m: raw}), noArena: true},
		{name: "alias_packed", model: sim.Compile[dining.State](raw), noArena: true},
		{name: "alias_packed_arena", model: sim.Compile[dining.State](raw)},
	}
	for _, rung := range rungs {
		b.Run(rung.name, func(b *testing.B) {
			o := opts
			o.BitCompat = rung.bitCompat
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, rep, err := sim.EstimateCurveParallel[dining.State](context.Background(), rung.model, mk, dining.InC, deadlines, trials, o,
					sim.ParallelOptions{Seed: 1, NoCompile: rung.noCompile, NoArena: rung.noArena})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Completed != trials {
					b.Fatalf("completed %d/%d trials", rep.Completed, trials)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// E12 addendum (compile ablation, election): parallel time-to-leader
// trials with the compiled transition cache on (the default) and off, so
// BENCH_sim.json records the speedup per case study.
func BenchmarkElectionTrials(b *testing.B) {
	const trials = 512
	model := election.MustNew(3)
	mk := func() sim.Policy[election.State] { return sim.Slowest[election.State]() }
	for _, mode := range []struct {
		name      string
		nocompile bool
	}{{"compiled", false}, {"uncompiled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, rep, err := sim.EstimateTimeToTargetParallel[election.State](context.Background(), model, mk,
					election.State.HasLeader, trials, sim.Options[election.State]{},
					sim.ParallelOptions{Seed: 1, NoCompile: mode.nocompile})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Completed != trials {
					b.Fatalf("completed %d/%d trials", rep.Completed, trials)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// E12 addendum (compile ablation, consensus): parallel Ben-Or
// reach-probability trials, compiled vs uncompiled.
func BenchmarkConsensusTrials(b *testing.B) {
	const trials = 256
	model := consensus.MustNew(3, 1)
	start, err := model.StartWith([]uint8{0, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.Options[consensus.State]{Start: start, SetStart: true, MaxEvents: 20000}
	mk := func() sim.Policy[consensus.State] { return consensus.CrashLastReporter(sim.Random[consensus.State](0)) }
	for _, mode := range []struct {
		name      string
		nocompile bool
	}{{"compiled", false}, {"uncompiled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, rep, err := sim.EstimateReachProbParallel[consensus.State](context.Background(), model, mk,
					consensus.State.AllCorrectDecided, 100, trials, opts,
					sim.ParallelOptions{Seed: 1, NoCompile: mode.nocompile})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Completed != trials {
					b.Fatalf("completed %d/%d trials", rep.Completed, trials)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// E-extra: the third case study — a full Ben-Or consensus run under the
// targeted crash adversary, asserting agreement on every iteration.
func BenchmarkConsensusRun(b *testing.B) {
	model := consensus.MustNew(3, 1)
	start, err := model.StartWith([]uint8{0, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunOnce[consensus.State](model,
			consensus.CrashLastReporter(sim.Random[consensus.State](0)),
			consensus.State.AllCorrectDecided,
			sim.Options[consensus.State]{Start: start, SetStart: true, MaxEvents: 20000},
			rng)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Final.AgreementHolds() {
			b.Fatal("agreement violated")
		}
	}
}

// E-extra: the second case study — per-level checks and composition for
// leader election at n=3.
func BenchmarkElectionProof(b *testing.B) {
	_, _, e := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, err := e.BuildProof()
		if err != nil {
			b.Fatal(err)
		}
		if !proof.Stmt.Prob.Equal(prob.MustParseRat("3/8")) {
			b.Fatalf("composed election prob = %v", proof.Stmt.Prob)
		}
	}
}

// E13: the worst-case probability curve (the §7 lower-bound direction):
// exact worst case of P[T reaches C within t] for t = 0..16.
func BenchmarkProgressCurve(b *testing.B) {
	a, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve, err := a.ProgressCurve(16)
		if err != nil {
			b.Fatal(err)
		}
		tight, ok := core.TightestTime(curve, prob.NewRat(1, 8))
		if !ok || tight != 7 {
			b.Fatalf("tightest horizon = %d, %t; want 7", tight, ok)
		}
	}
}

// E-ablation (DESIGN.md §5.3): exact rationals vs float64 value iteration
// on the same G --5--> P query. Compare ns/op with BenchmarkArrowG_P.
func BenchmarkFloatVI(b *testing.B) {
	a, _, _ := fixtures(b)
	toMask := a.Index.Mask(sched.LiftPred(dining.InP))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := a.MDP.ReachWithinTicksFloat(toMask, 5, mdp.MinProb)
		if err != nil {
			b.Fatal(err)
		}
		if len(v) != a.Index.Len() {
			b.Fatal("short result")
		}
	}
}

// E-extra: the most-damning schedule extraction for the composed claim.
func BenchmarkWorstWitness(b *testing.B) {
	a, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines, err := a.WorstWitness(13)
		if err != nil {
			b.Fatal(err)
		}
		if len(lines) == 0 {
			b.Fatal("empty witness")
		}
	}
}

// E-extra: cost of enumerating the digitized product itself (n=3, k=1).
func BenchmarkEnumerateProduct(b *testing.B) {
	model := dining.MustNew(3)
	for i := 0; i < b.N; i++ {
		auto, err := sched.Product[dining.State](model, sched.Config{StepsPerWindow: 1})
		if err != nil {
			b.Fatal(err)
		}
		m, _, err := mdp.FromAutomaton(auto, 0)
		if err != nil {
			b.Fatal(err)
		}
		if m.NumStates == 0 {
			b.Fatal("empty product")
		}
	}
}

// E22: the exact engine at scale — walk the dining n=3 k=2 product
// (≈35k states) frontier-by-frontier into CSR form with the on-the-fly
// explorer and model-check the composed T --13,1/8--> C claim on the
// result, exactly as `lrcheck -n 3 -k 2` does. states/s counts explored
// product states per wall-clock second of the full explore+solve loop —
// the quantity the STATES_FLOOR gate in `make bench-diff` enforces —
// and B/state is the resident CSR transition structure per state, the
// number that decides how far -mem-budget lets a ring grow.
func BenchmarkExactEngine(b *testing.B) {
	b.ReportAllocs()
	var states int
	var footprint int64
	for i := 0; i < b.N; i++ {
		a, err := dining.NewAnalysisOpts(3, 2, dining.Opts{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := core.CheckStatement(a.MDP, a.Index, a.ComposedStatement())
		if err != nil {
			b.Fatal(err)
		}
		if !r.Holds {
			b.Fatalf("composed statement fails on the explored product: %s", r)
		}
		states = a.Index.Len()
		footprint = a.MDP.CSR().MemFootprint()
	}
	b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
	b.ReportMetric(float64(footprint)/float64(states), "B/state")
}

// Observability overhead: the same parallel run with the telemetry hook
// disabled (nil Metrics — the default every existing caller gets) and
// enabled (the registry-backed obs.SimMetrics the CLIs install). The
// acceptance criterion is the allocs/op column: both modes must report the
// same allocation count, proving instrumentation adds zero allocations to
// the per-trial hot path; the ns/op delta is the (atomic-counter) price of
// a live progress display.
func BenchmarkMetricsOverhead(b *testing.B) {
	const (
		n      = 8
		trials = 256
	)
	model := sim.Compile[dining.State](dining.MustNew(n))
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }

	modes := []struct {
		name string
		met  sim.Metrics
	}{
		{"disabled", nil},
		{"enabled", obs.NewSimMetrics(obs.NewRegistry(), trials)},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC,
					13, trials, opts, sim.ParallelOptions{Seed: 1, Metrics: mode.met})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}

	// The ≤2% overhead budget, as an assertion: interleave disabled and
	// enabled runs and compare the per-mode minima (the least-noisy
	// paired estimator available without statistics). One sample proves
	// nothing, so the gate only trips at b.N >= 3 — `-benchtime=1x`
	// smoke runs pass through, `make bench`/bench-json enforce it.
	b.Run("overhead", func(b *testing.B) {
		met := obs.NewSimMetrics(obs.NewRegistry(), trials)
		run := func(met sim.Metrics) time.Duration {
			start := time.Now()
			_, _, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC,
				13, trials, opts, sim.ParallelOptions{Seed: 1, Metrics: met})
			if err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		minOff := time.Duration(math.MaxInt64)
		minOn := minOff
		for i := 0; i < b.N; i++ {
			if d := run(nil); d < minOff {
				minOff = d
			}
			if d := run(met); d < minOn {
				minOn = d
			}
		}
		overhead := float64(minOn)/float64(minOff) - 1
		b.ReportMetric(100*overhead, "overhead-%")
		if b.N >= 3 && overhead > 0.02 {
			b.Fatalf("metrics overhead %.1f%% exceeds the 2%% budget (disabled %v, enabled %v)",
				100*overhead, minOff, minOn)
		}
	})
}

// BenchmarkSpanOverhead pins the cost of the chunk-lifecycle span seam
// (sim.ParallelOptions.SpanHooks) on the dining headline workload.
// Disabled hooks must cost one nil check per chunk and zero extra
// allocations per trial; enabled hooks (two spans' worth of JSONL per
// 64-trial chunk) must stay under the same 2% budget as the metrics
// seam, using the same paired-minima estimator.
func BenchmarkSpanOverhead(b *testing.B) {
	// 1024 trials = 16 chunks per sample: long enough that the 2%
	// budget (~100µs) sits above single-core scheduler jitter, which
	// drowned the gate at 256 trials, while keeping samples short
	// enough for ~100 measurement pairs per run.
	const (
		n      = 8
		trials = 1024
	)
	model := sim.Compile[dining.State](dining.MustNew(n))
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }
	tracer := span.New(io.Discard, span.Options{Service: "bench"})
	root := tracer.Start("job", span.SpanContext{})
	defer func() {
		root.End()
		tracer.Close()
	}()

	modes := []struct {
		name  string
		hooks sim.SpanHooks
	}{
		{"disabled", nil},
		{"enabled", span.ChunkSpans(tracer, root.Context())},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC,
					13, trials, opts, sim.ParallelOptions{Seed: 1, SpanHooks: mode.hooks})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}

	// The ≤2% budget as an assertion. Each iteration runs both modes
	// back to back (order alternating to cancel drift) and contributes
	// one enabled/disabled ratio; the reported metric is the median
	// ratio, but the gate trips on the *lower quartile*: noise is
	// symmetric between the paired halves, so unless the true overhead
	// really exceeds 2% even the quietest quarter of pairs will not —
	// a real regression (a per-trial span, a reflective encoder on the
	// write path) shifts the whole distribution and still fails
	// decisively. The metrics gate's cross-mode minima comparison
	// proved too fragile for this seam on a single-core box, where
	// run-level throughput drifts by several percent.
	b.Run("overhead", func(b *testing.B) {
		hooks := span.ChunkSpans(tracer, root.Context())
		run := func(h sim.SpanHooks) time.Duration {
			popts := sim.ParallelOptions{Seed: 1}
			popts.SpanHooks = h
			start := time.Now()
			_, _, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC,
				13, trials, opts, popts)
			if err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		ratios := make([]float64, 0, b.N)
		for i := 0; i < b.N; i++ {
			var off, on time.Duration
			if i%2 == 0 {
				off, on = run(nil), run(hooks)
			} else {
				on, off = run(hooks), run(nil)
			}
			ratios = append(ratios, float64(on)/float64(off))
		}
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2] - 1
		q25 := ratios[len(ratios)/4] - 1
		b.ReportMetric(100*median, "overhead-%")
		if b.N >= 3 && q25 > 0.02 {
			b.Fatalf("span overhead exceeds the 2%% budget: lower quartile %.1f%%, median %.1f%% over %d paired ratios",
				100*q25, 100*median, len(ratios))
		}
	})
}

// BenchmarkBreakerOverhead pins the cost of the worker's circuit
// breaker on the RPC hot path. Every fabric RPC a worker sends is
// bracketed by Allow/Record on a fault.Breaker (two mutex round trips);
// the benchmark measures real loopback HTTP POSTs bare and bracketed,
// and the gate asserts the bracketed path stays within the same 2%
// budget as the metrics and span seams. Loopback HTTP on a shared box
// is far noisier than the in-process engine runs, so each sample is a
// batch of round trips and the gate uses the span seam's paired-ratio
// lower-quartile estimator rather than cross-mode minima.
func BenchmarkBreakerOverhead(b *testing.B) {
	// 64 round trips per sample: a closed-breaker Allow/Record pair
	// costs tens of nanoseconds against a ~100µs loopback POST, so the
	// batch exists to average per-request scheduler jitter, not to make
	// the overhead visible — the gate proves a *regression* (a syscall,
	// an allocation, contention on the breaker lock) would be caught.
	const rpcs = 64
	body := []byte(`{"lease":"bench","chunk":0}`)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	client := srv.Client()

	post := func() error {
		resp, err := client.Post(srv.URL, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}
	br := fault.NewBreaker(fault.BreakerOptions{})
	// batch times one sample of rpcs round trips, each bracketed the way
	// internal/fabric.Worker brackets its RPCs when a breaker is set: a
	// transport error is Recorded as failure, any HTTP response as
	// success.
	batch := func(br *fault.Breaker) time.Duration {
		start := time.Now()
		for i := 0; i < rpcs; i++ {
			if br == nil {
				if err := post(); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if err := br.Allow(); err != nil {
				b.Fatal(err)
			}
			err := post()
			br.Record(err)
			if err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}

	modes := []struct {
		name string
		br   *fault.Breaker
	}{
		{"bare", nil},
		{"breaker", br},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				batch(mode.br)
			}
			b.ReportMetric(float64(rpcs)*float64(b.N)/b.Elapsed().Seconds(), "rpcs/s")
		})
	}

	// The ≤2% budget as an assertion, alternating order to cancel drift
	// and gating on the lower quartile of paired ratios (see
	// BenchmarkSpanOverhead for why minima are too fragile here).
	b.Run("overhead", func(b *testing.B) {
		ratios := make([]float64, 0, b.N)
		for i := 0; i < b.N; i++ {
			var off, on time.Duration
			if i%2 == 0 {
				off, on = batch(nil), batch(br)
			} else {
				on, off = batch(br), batch(nil)
			}
			ratios = append(ratios, float64(on)/float64(off))
		}
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2] - 1
		q25 := ratios[len(ratios)/4] - 1
		b.ReportMetric(100*median, "overhead-%")
		if b.N >= 3 && q25 > 0.02 {
			b.Fatalf("breaker overhead exceeds the 2%% budget: lower quartile %.1f%%, median %.1f%% over %d paired ratios",
				100*q25, 100*median, len(ratios))
		}
	})
}
