package timedpa_test

import (
	"strings"
	"testing"

	timedpa "repro"
)

// The facade test mirrors the quickstart example: a coin automaton,
// checked and composed through the public API only.
type qstate string

func quickAutomaton() *timedpa.Automaton[qstate] {
	return &timedpa.Automaton[qstate]{
		Name:  "coin",
		Start: []qstate{"flipping"},
		Steps: func(s qstate) []timedpa.Step[qstate] {
			switch s {
			case "flipping":
				return []timedpa.Step[qstate]{{
					Action: "flip",
					Next: timedpa.MustDist(
						timedpa.Outcome[qstate]{Value: "win", Prob: timedpa.Half()},
						timedpa.Outcome[qstate]{Value: "flipping", Prob: timedpa.Half()},
					),
				}}
			case "win":
				return []timedpa.Step[qstate]{{Action: "announce", Next: timedpa.PointDist(qstate("done"))}}
			default:
				return nil
			}
		},
		Duration: func(string) timedpa.Rat { return timedpa.One() },
	}
}

func TestFacadeCheckAndCompose(t *testing.T) {
	coin := quickAutomaton()
	m, ix, err := timedpa.EnumerateMDP(coin, 0)
	if err != nil {
		t.Fatal(err)
	}

	schema := timedpa.UnitTimeSchema(1)
	flipping := timedpa.NewStateSet("Flipping", func(s qstate) bool { return s == "flipping" })
	win := timedpa.NewStateSet("Win", func(s qstate) bool { return s == "win" })
	done := timedpa.NewStateSet("Done", func(s qstate) bool { return s == "done" })

	claim1 := timedpa.Statement[qstate]{
		From: flipping, To: win,
		Time: timedpa.NewRat(3, 1), Prob: timedpa.MustParseRat("7/8"),
		Schema: schema,
	}
	r1, err := timedpa.CheckStatement(m, ix, claim1)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Holds || !r1.WorstProb.Equal(timedpa.MustParseRat("7/8")) {
		t.Errorf("claim1 result: %s", r1)
	}

	claim2 := timedpa.Statement[qstate]{
		From: win, To: done,
		Time: timedpa.One(), Prob: timedpa.One(),
		Schema: schema,
	}
	states, err := coin.Reachable(0)
	if err != nil {
		t.Fatal(err)
	}
	u := timedpa.NewUniverse(states)
	p1, err := timedpa.Premise(claim1, "checked")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := timedpa.Premise(claim2, "checked")
	if err != nil {
		t.Fatal(err)
	}
	composed, err := timedpa.ComposeChain(u, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if got := composed.Stmt.String(); !strings.Contains(got, "Flipping --4,7/8--> Done") {
		t.Errorf("composed = %q", got)
	}

	// Weaken keeps bounds.
	w, err := timedpa.Weaken(p1, done)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Stmt.Prob.Equal(timedpa.MustParseRat("7/8")) {
		t.Errorf("weaken changed probability: %s", w.Stmt)
	}

	// A bad composition is rejected through the facade too.
	if _, err := timedpa.Compose(u, p2, p1); err == nil {
		t.Error("mismatched composition accepted")
	}
}

func TestFacadeBuildProduct(t *testing.T) {
	a, err := timedpa.NewDiningAnalysis(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Index.Len() == 0 {
		t.Error("empty dining analysis")
	}
	e, err := timedpa.NewElectionAnalysis(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Index.Len() == 0 {
		t.Error("empty election analysis")
	}
}

func TestFacadeEvents(t *testing.T) {
	coin := quickAutomaton()
	adv := firstEnabledFacade(coin)

	reach := timedpa.ReachEvent(func(s qstate) bool { return s == "done" }, timedpa.NewRat(4, 1))
	iv, err := timedpa.EventProb(coin, adv, qstate("flipping"), reach, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Exact() || !iv.Lo.Equal(timedpa.MustParseRat("7/8")) {
		t.Errorf("P[done within 4] = %v, want exactly 7/8", iv)
	}

	first := timedpa.FirstEvent("flip", func(s qstate) bool { return s == "win" })
	ivF, err := timedpa.EventProb(coin, adv, qstate("flipping"), first, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !ivF.Exact() || !ivF.Lo.Equal(timedpa.Half()) {
		t.Errorf("P[first flip wins] = %v, want 1/2", ivF)
	}

	both := timedpa.AndEvents(first, reach)
	ivBoth, err := timedpa.EventProb(coin, adv, qstate("flipping"), both, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ivBoth.Lo.Sign() <= 0 {
		t.Errorf("P[and] = %v, want positive", ivBoth)
	}

	neither := timedpa.NotEvent(timedpa.OrEvents(first, reach))
	ivN, err := timedpa.EventProb(coin, adv, qstate("flipping"), neither, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !ivN.Hi.Less(timedpa.Half()) {
		t.Errorf("P[neither] = %v, want below 1/2", ivN)
	}

	if _, err := timedpa.NextEvent(
		timedpa.EventPair[qstate]{Action: "flip"},
		timedpa.EventPair[qstate]{Action: "flip"},
	); err == nil {
		t.Error("duplicate NextEvent actions accepted")
	}
}

// firstEnabledFacade is a minimal deterministic adversary for facade
// tests.
func firstEnabledFacade(m *timedpa.Automaton[qstate]) timedpa.Adversary[qstate] {
	return timedpa.FirstEnabledAdversary(m)
}

func TestFacadeSetOps(t *testing.T) {
	a := timedpa.NewStateSet("A", func(s int) bool { return s == 1 })
	b := timedpa.NewStateSet("B", func(s int) bool { return s == 2 })
	u := timedpa.UnionSets(a, b)
	if u.Name != "A∪B" || !u.Contains(1) || !u.Contains(2) || u.Contains(3) {
		t.Errorf("union misbehaves: %q", u.Name)
	}
	d, err := timedpa.UniformDist(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !d.P(2).Equal(timedpa.NewRat(1, 4)) {
		t.Errorf("uniform P = %v", d.P(2))
	}
	if _, err := timedpa.NewDist(timedpa.Outcome[int]{Value: 1, Prob: timedpa.Half()}); err == nil {
		t.Error("invalid distribution accepted")
	}
	if _, err := timedpa.ParseRat("nope"); err == nil {
		t.Error("bad rational accepted")
	}
	if z := timedpa.Zero(); !z.IsZero() {
		t.Error("Zero is not zero")
	}
}
