// Compiled-vs-direct identity across the three case studies: the
// compiled-model layer (sim.Compile, on by default in every parallel
// entry point) must be a pure performance change — for every model,
// seed and worker count, estimates are DeepEqual to the uncompiled
// engine's, including through the checkpoint/resume path. The
// in-package half of this property (hand-built models, user moves,
// RunOnce) lives in internal/sim; the CLI tests additionally assert
// byte-identical output with and without -nocompile.
package timedpa_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/sim"
	"repro/internal/stats"
)

var identitySeeds = []int64{1, 2, 3}
var identityWorkers = []int{1, 2, 8}

// runPair runs the same estimate with the compiled layer on and off and
// returns both results for comparison.
func runPair[T any](t *testing.T, run func(popts sim.ParallelOptions) (T, sim.RunReport, error), seed int64, workers int) (compiled, direct T) {
	t.Helper()
	base := sim.ParallelOptions{Seed: seed, Workers: workers}
	noc := base
	noc.NoCompile = true
	compiled, repC, errC := run(base)
	direct, repU, errU := run(noc)
	if errC != nil || errU != nil {
		t.Fatalf("seed=%d workers=%d: errs compiled=%v direct=%v", seed, workers, errC, errU)
	}
	if repC.Completed != repU.Completed {
		t.Fatalf("seed=%d workers=%d: completed %d (compiled) != %d (direct)", seed, workers, repC.Completed, repU.Completed)
	}
	return compiled, direct
}

func TestCompiledIdentityDining(t *testing.T) {
	const n, trials = 4, 192
	model := dining.MustNew(n)
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }
	deadlines := []float64{2, 4, 8, 13}
	for _, seed := range identitySeeds {
		for _, workers := range identityWorkers {
			got, want := runPair(t, func(popts sim.ParallelOptions) (sim.EmpiricalCurve, sim.RunReport, error) {
				return sim.EstimateCurveParallel[dining.State](context.Background(), model, mk, dining.InC, deadlines, trials, opts, popts)
			}, seed, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("dining seed=%d workers=%d: compiled curve %+v != direct %+v", seed, workers, got, want)
			}
		}
	}
}

func TestCompiledIdentityElection(t *testing.T) {
	const n, trials = 3, 192
	model := election.MustNew(n)
	mk := func() sim.Policy[election.State] { return sim.Slowest[election.State]() }
	for _, seed := range identitySeeds {
		for _, workers := range identityWorkers {
			got, want := runPair(t, func(popts sim.ParallelOptions) (sim.EmpiricalCurve, sim.RunReport, error) {
				return sim.EstimateCurveParallel[election.State](context.Background(), model, mk, election.State.HasLeader,
					[]float64{4, 8, 16}, trials, sim.Options[election.State]{}, popts)
			}, seed, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("election seed=%d workers=%d: compiled curve %+v != direct %+v", seed, workers, got, want)
			}
		}
	}
}

func TestCompiledIdentityConsensus(t *testing.T) {
	const trials = 192
	model := consensus.MustNew(3, 1)
	start, err := model.StartWith([]uint8{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options[consensus.State]{Start: start, SetStart: true, MaxEvents: 20000}
	mk := func() sim.Policy[consensus.State] {
		return consensus.CrashLastReporter(sim.Random[consensus.State](0))
	}
	for _, seed := range identitySeeds {
		for _, workers := range identityWorkers {
			got, want := runPair(t, func(popts sim.ParallelOptions) (stats.Proportion, sim.RunReport, error) {
				return sim.EstimateReachProbParallel[consensus.State](context.Background(), model, mk,
					consensus.State.AllCorrectDecided, 100, trials, opts, popts)
			}, seed, workers)
			if got != want {
				t.Errorf("consensus seed=%d workers=%d: compiled %+v != direct %+v", seed, workers, got, want)
			}
		}
	}
}

// TestCompiledIdentityResume drives the checkpoint/resume path on a real
// model: a compiled run interrupted mid-flight and resumed must equal
// the direct engine's uninterrupted run bit-for-bit.
func TestCompiledIdentityResume(t *testing.T) {
	const n, trials = 4, 640
	model := dining.MustNew(n)
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }

	want, _, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC, 13, trials, opts,
		sim.ParallelOptions{Seed: 5, NoCompile: true})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunks := 0
	popts := sim.ParallelOptions{
		Seed: 5, Workers: 2,
		CheckpointSink: func(*sim.Checkpoint) error {
			if chunks++; chunks == 3 {
				cancel()
			}
			return nil
		},
	}
	_, rep, err := sim.EstimateReachProbParallel[dining.State](ctx, model, mk, dining.InC, 13, trials, opts, popts)
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	got, rep2, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC, 13, trials, opts,
		sim.ParallelOptions{Seed: 5, Workers: 8, Resume: rep.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != rep.Completed || rep2.Completed != trials {
		t.Fatalf("resume accounting: %v then %v", rep, rep2)
	}
	if got != want {
		t.Errorf("compiled interrupt+resume %+v != direct uninterrupted %+v", got, want)
	}
}
