// Compiled-vs-direct identity across the three case studies. The
// compiled-model layer (sim.Compile, on by default in every parallel
// entry point) must be a pure performance change, but the contract has
// two halves:
//
//   - Bit compatibility. With Options.BitCompat the compiled engine
//     samples through the same cumulative scan as the uncompiled one,
//     so estimates are DeepEqual to the direct engine's for every
//     model, seed and worker count — with and without packed state
//     interning and trial arenas, and through the checkpoint/resume
//     path.
//
//   - Distribution. The alias-table default consumes the same one
//     uniform per draw but maps it to successors through Walker
//     columns, so it agrees with the direct engine in distribution,
//     not bit for bit. That half is pinned statistically against the
//     exact checker (internal/mdp) on a small instance.
//
// The in-package half of these properties (hand-built models, user
// moves, RunOnce) lives in internal/sim; the CLI tests additionally
// assert byte-identical -bitcompat vs -nocompile output.
package timedpa_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/mdp"
	"repro/internal/pa"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

var identitySeeds = []int64{1, 2, 3}
var identityWorkers = []int{1, 2, 8}

// engineConfig is one engine configuration under test. The first entry
// is the uncompiled reference; every other entry must reproduce its
// results bit for bit. The alias default is deliberately absent here —
// its (statistical) identity is TestAliasDefaultMatchesExact.
type engineConfig struct {
	name      string
	noCompile bool
	bitCompat bool
	noArena   bool
	unpacked  bool
}

var engineConfigs = []engineConfig{
	{name: "direct", noCompile: true},
	{name: "bitcompat", bitCompat: true},
	{name: "bitcompat-noarena", bitCompat: true, noArena: true},
	{name: "bitcompat-unpacked", bitCompat: true, unpacked: true},
}

// unpackedModel hides a model's sched.Packer implementation so the
// compiled layer falls back to interning raw state values; packed
// interning is a cache-key change and must be invisible in results.
type unpackedModel[S comparable] struct{ m sched.Model[S] }

func (u unpackedModel[S]) Name() string                  { return u.m.Name() }
func (u unpackedModel[S]) NumProcs() int                 { return u.m.NumProcs() }
func (u unpackedModel[S]) Start() []S                    { return u.m.Start() }
func (u unpackedModel[S]) Moves(s S, i int) []pa.Step[S] { return u.m.Moves(s, i) }
func (u unpackedModel[S]) UserMoves(s S, i int) []pa.Step[S] {
	return u.m.UserMoves(s, i)
}

// runConfigs runs the same estimate under every engine configuration and
// checks each result against the direct reference.
func runConfigs[S comparable, T any](t *testing.T, model sched.Model[S], opts sim.Options[S], seed int64, workers int,
	run func(m sched.Model[S], opts sim.Options[S], popts sim.ParallelOptions) (T, sim.RunReport, error)) {
	t.Helper()
	var ref T
	var refRep sim.RunReport
	for i, cfg := range engineConfigs {
		m := model
		if cfg.unpacked {
			m = unpackedModel[S]{m: model}
		}
		o := opts
		o.BitCompat = cfg.bitCompat
		popts := sim.ParallelOptions{Seed: seed, Workers: workers, NoCompile: cfg.noCompile, NoArena: cfg.noArena}
		got, rep, err := run(m, o, popts)
		if err != nil {
			t.Fatalf("%s seed=%d workers=%d: %v", cfg.name, seed, workers, err)
		}
		if i == 0 {
			ref, refRep = got, rep
			continue
		}
		if rep.Completed != refRep.Completed {
			t.Errorf("%s seed=%d workers=%d: completed %d != direct %d", cfg.name, seed, workers, rep.Completed, refRep.Completed)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s seed=%d workers=%d: %+v != direct %+v", cfg.name, seed, workers, got, ref)
		}
	}
}

func TestCompiledIdentityDining(t *testing.T) {
	const n, trials = 4, 192
	model := dining.MustNew(n)
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }
	deadlines := []float64{2, 4, 8, 13}
	for _, seed := range identitySeeds {
		for _, workers := range identityWorkers {
			runConfigs(t, model, opts, seed, workers,
				func(m sched.Model[dining.State], o sim.Options[dining.State], popts sim.ParallelOptions) (sim.EmpiricalCurve, sim.RunReport, error) {
					return sim.EstimateCurveParallel[dining.State](context.Background(), m, mk, dining.InC, deadlines, trials, o, popts)
				})
		}
	}
}

func TestCompiledIdentityElection(t *testing.T) {
	const n, trials = 3, 192
	model := election.MustNew(n)
	mk := func() sim.Policy[election.State] { return sim.Slowest[election.State]() }
	for _, seed := range identitySeeds {
		for _, workers := range identityWorkers {
			runConfigs(t, model, sim.Options[election.State]{}, seed, workers,
				func(m sched.Model[election.State], o sim.Options[election.State], popts sim.ParallelOptions) (sim.EmpiricalCurve, sim.RunReport, error) {
					return sim.EstimateCurveParallel[election.State](context.Background(), m, mk, election.State.HasLeader,
						[]float64{4, 8, 16}, trials, o, popts)
				})
		}
	}
}

func TestCompiledIdentityConsensus(t *testing.T) {
	const trials = 192
	model := consensus.MustNew(3, 1)
	start, err := model.StartWith([]uint8{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options[consensus.State]{Start: start, SetStart: true, MaxEvents: 20000}
	mk := func() sim.Policy[consensus.State] {
		return consensus.CrashLastReporter(sim.Random[consensus.State](0))
	}
	for _, seed := range identitySeeds {
		for _, workers := range identityWorkers {
			runConfigs(t, model, opts, seed, workers,
				func(m sched.Model[consensus.State], o sim.Options[consensus.State], popts sim.ParallelOptions) (stats.Proportion, sim.RunReport, error) {
					return sim.EstimateReachProbParallel[consensus.State](context.Background(), m, mk,
						consensus.State.AllCorrectDecided, 100, trials, o, popts)
				})
		}
	}
}

// TestCompiledIdentityResume drives the checkpoint/resume path on a real
// model, once per contract half: a BitCompat run interrupted mid-flight
// and resumed must equal the direct engine's uninterrupted run bit for
// bit, and an alias-default run interrupted the same way must equal its
// own uninterrupted run (resume must not disturb the trial streams under
// either sampler).
func TestCompiledIdentityResume(t *testing.T) {
	const n, trials = 4, 640
	model := dining.MustNew(n)
	mk := func() sim.Policy[dining.State] { return dining.KeepTrying(sim.Random[dining.State](0.5)) }

	uninterrupted := func(opts sim.Options[dining.State], popts sim.ParallelOptions) stats.Proportion {
		t.Helper()
		got, _, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC, 13, trials, opts, popts)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	// interrupted cancels a compiled run at its third checkpoint chunk,
	// then resumes from the checkpoint with a different worker count.
	interrupted := func(opts sim.Options[dining.State]) stats.Proportion {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		chunks := 0
		popts := sim.ParallelOptions{
			Seed: 5, Workers: 2,
			CheckpointSink: func(*sim.Checkpoint) error {
				if chunks++; chunks == 3 {
					cancel()
				}
				return nil
			},
		}
		_, rep, err := sim.EstimateReachProbParallel[dining.State](ctx, model, mk, dining.InC, 13, trials, opts, popts)
		if !errors.Is(err, sim.ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		got, rep2, err := sim.EstimateReachProbParallel[dining.State](context.Background(), model, mk, dining.InC, 13, trials, opts,
			sim.ParallelOptions{Seed: 5, Workers: 8, Resume: rep.Checkpoint})
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Resumed != rep.Completed || rep2.Completed != trials {
			t.Fatalf("resume accounting: %v then %v", rep, rep2)
		}
		return got
	}

	base := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	compat := base
	compat.BitCompat = true

	want := uninterrupted(base, sim.ParallelOptions{Seed: 5, NoCompile: true})
	if got := interrupted(compat); got != want {
		t.Errorf("bitcompat interrupt+resume %+v != direct uninterrupted %+v", got, want)
	}
	aliasWant := uninterrupted(base, sim.ParallelOptions{Seed: 5})
	if got := interrupted(base); got != aliasWant {
		t.Errorf("alias interrupt+resume %+v != alias uninterrupted %+v", got, aliasWant)
	}
}

// TestAliasDefaultMatchesExact pins the statistical half of the compiled
// contract: the alias-table default must reproduce the exact checker's
// answers. The oracle is the digitized product of the 3-process election
// protocol (internal/mdp): under the Slowest policy — the digitized
// worst case, stepping exactly at each unit-time deadline — the dense
// simulator realizes the MDP's minimizing adversary, so at even
// deadlines P[leader within H] equals ReachWithinTicks(H, MinProb) from
// the start state (3/8 at H=2: exactly one of three fair coins comes up
// on the surviving side). Per horizon, the identity seeds' runs are
// merged and the pooled Wilson interval (z=3) must cover the exact
// value — merging keeps the test deterministic while damping the
// per-seed wiggle of a 4000-trial sample.
func TestAliasDefaultMatchesExact(t *testing.T) {
	const n, trials = 3, 4000
	auto, err := sched.Product[election.State](election.MustNew(n), sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, ix, err := mdp.FromAutomaton(auto, 0)
	if err != nil {
		t.Fatal(err)
	}
	start, ok := ix.ID(auto.Start[0])
	if !ok {
		t.Fatal("start state not enumerated")
	}
	mask := ix.Mask(sched.LiftPred(election.State.HasLeader))

	model := election.MustNew(n)
	for _, horizon := range []int{2, 4, 8} {
		v, err := m.ReachWithinTicksFloat(mask, horizon, mdp.MinProb)
		if err != nil {
			t.Fatal(err)
		}
		exact := v[start]
		if horizon == 2 && exact != 3.0/8 {
			t.Fatalf("one-round election probability = %v, want 3/8", exact)
		}
		var pooled stats.Proportion
		for _, seed := range identitySeeds {
			prop, _, err := sim.EstimateReachProbParallel[election.State](context.Background(), model,
				func() sim.Policy[election.State] { return sim.Slowest[election.State]() },
				election.State.HasLeader, float64(horizon), trials,
				sim.Options[election.State]{}, sim.ParallelOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			pooled.Merge(prop)
		}
		lo, hi, err := pooled.Wilson(3)
		if err != nil {
			t.Fatal(err)
		}
		if lo > exact || hi < exact {
			t.Errorf("H=%d: alias estimate interval [%g, %g] excludes exact %g", horizon, lo, hi, exact)
		}
	}
}
