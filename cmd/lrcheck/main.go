// Command lrcheck is the exact worst-case checker for the Lehmann–Rabin
// reproduction: it enumerates the digitized Unit-Time scheduler product
// for a given ring size and speed bound, verifies each of the paper's five
// arrow statements by exact rational value iteration, rebuilds the
// Section 6.2 derivation of T --13,1/8--> C, checks the composed statement
// directly, and reports the expected-time bounds (recurrence vs measured)
// and the qualitative Zuck–Pnueli baseline.
//
// Usage:
//
//	lrcheck [-n ring] [-k steps-per-window] [-skip-expected]
//	        [-workers N] [-mem-budget bytes]
//
// The product is generated on the fly into compressed-sparse-row form and
// every solver sweeps it with -workers goroutines (deterministically: any
// worker count produces identical output); -mem-budget caps the resident
// transition structure for large rings.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lrcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lrcheck", flag.ContinueOnError)
	n := fs.Int("n", 3, "ring size (2..16; exact checking is practical up to ~4)")
	k := fs.Int("k", 1, "steps per process per unit-time window (digitization speed bound)")
	skipExpected := fs.Bool("skip-expected", false, "skip the expected-time value iteration")
	curve := fs.Int("curve", 0, "also print the worst-case probability curve up to this horizon")
	witness := fs.Bool("witness", false, "print a most-damning adversary schedule for the composed claim")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	lemmas := fs.Bool("lemmas", false, "also check every appendix lemma (A.4–A.13) at every pivot")
	exportPrefix := fs.String("export-prefix", "", "write the product MDP as PRISM explicit files <prefix>.tra and <prefix>.lab")
	workers := fs.Int("workers", 0, "exploration and solver parallelism (0 = all cores; any value gives identical results)")
	memBudget := fs.Int64("mem-budget", 0, "abort enumeration beyond this many bytes of transition structure (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := dining.Opts{Workers: *workers, MemBudget: *memBudget}

	if *jsonOut {
		return runJSON(*n, *k, *curve, *skipExpected, opts)
	}

	fmt.Printf("Lehmann–Rabin worst-case check: n=%d, digitized Unit-Time with k=%d\n", *n, *k)
	a, err := dining.NewAnalysisOpts(*n, *k, opts)
	if err != nil {
		return err
	}
	fmt.Printf("enumerated product: %d states\n\n", a.Index.Len())

	fmt.Println("Paper arrows (Section 6.2 / Appendix A), worst case over all digitized adversaries:")
	results, err := a.CheckPaperChain()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "origin\tstatement\tclaimed p\tmeasured worst p\tverdict")
	origins := dining.PaperStatementOrigins()
	allHold := true
	for i, r := range results {
		verdict := "HOLDS"
		if !r.Holds {
			verdict = "FAILS"
			allHold = false
		}
		fmt.Fprintf(tw, "%s\t%s --%v--> %s\t%v\t%v\t%s\n",
			origins[i], r.Stmt.From.Name, r.Stmt.Time, r.Stmt.To.Name,
			r.Stmt.Prob, r.WorstProb, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Println("\nComposed derivation (Prop 3.2 + Thm 3.4):")
	proof, err := a.BuildPaperProof()
	if err != nil {
		return err
	}
	fmt.Print(proof.Render())

	direct, err := core.CheckStatement(a.MDP, a.Index, a.ComposedStatement())
	if err != nil {
		return err
	}
	fmt.Printf("\nDirect model check of the composed claim:\n  %s\n", direct)
	fmt.Printf("  composition is sound but lossy: derived bound %v vs direct worst case %v\n",
		proof.Stmt.Prob, direct.WorstProb)

	loopBound, err := a.RetryLoop().ExpectedTime()
	if err != nil {
		return err
	}
	totalBound, err := a.ExpectedTimeBound()
	if err != nil {
		return err
	}
	fmt.Printf("\nExpected time (Section 6.2 recurrence): E[RT loop] = %v, total T→C bound = %v\n",
		loopBound, totalBound)

	if !*skipExpected {
		worst, state, err := a.WorstExpectedTime()
		if err != nil {
			return err
		}
		best, err := a.BestExpectedTime()
		if err != nil {
			return err
		}
		fmt.Printf("Measured worst expected time to C: %.4f (at %v) — paper bound %v\n",
			worst, state, totalBound)
		fmt.Printf("Cooperative-scheduler counterpart (min over adversaries, worst T state): %.4f\n", best)
	}

	if *curve > 0 {
		points, err := a.ProgressCurve(*curve)
		if err != nil {
			return err
		}
		fmt.Printf("\nWorst-case P[T reaches C within t] by horizon (exact):\n")
		fmt.Print(core.RenderCurve(points, direct.Stmt.Prob))
		if t, ok := core.TightestTime(points, direct.Stmt.Prob); ok {
			fmt.Printf("tightest horizon for p = %v: t = %d (paper uses t = 13)\n", direct.Stmt.Prob, t)
		}
	}

	if *witness {
		lines, err := a.WorstWitness(13)
		if err != nil {
			return err
		}
		fmt.Printf("\nMost-damning schedule for T --13,1/8--> C:\n")
		for _, line := range lines {
			fmt.Println("  " + line)
		}
	}

	if *exportPrefix != "" {
		if err := exportPRISM(a, *exportPrefix); err != nil {
			return err
		}
		fmt.Printf("\nwrote PRISM explicit files %s.tra and %s.lab (labels: trying, critical)\n",
			*exportPrefix, *exportPrefix)
	}

	if *lemmas {
		fmt.Println("\nAppendix lemmas (rigged-model conditioning for first(flip, d) hypotheses):")
		results, err := dining.CheckAppendix(*n, *k, nil)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println("  " + r.String())
			if !r.Holds && !r.Vacuous {
				allHold = false
			}
		}
	}

	total, almostSure := a.QualitativeProgress()
	fmt.Printf("\nZuck–Pnueli baseline (qualitative): %d/%d T-states reach C with probability 1 under every adversary\n",
		almostSure, total)
	fmt.Println("  (the baseline gives no time bound; the paper's method replaces it with (13, 1/8))")

	if !allHold {
		return fmt.Errorf("some paper statements fail in the digitized model")
	}
	return nil
}

// exportPRISM writes the enumerated product in PRISM explicit-state
// format so external model checkers can re-verify every number.
func exportPRISM(a *dining.Analysis, prefix string) error {
	tra, err := os.Create(prefix + ".tra")
	if err != nil {
		return err
	}
	defer tra.Close()
	if err := a.MDP.ExportTra(tra); err != nil {
		return err
	}

	lab, err := os.Create(prefix + ".lab")
	if err != nil {
		return err
	}
	defer lab.Close()
	init := make([]bool, a.Index.Len())
	if len(init) > 0 {
		init[0] = true
	}
	return a.MDP.ExportLab(lab, init, map[string][]bool{
		"trying":   a.Index.Mask(func(s dining.PState) bool { return a.Set("T").Contains(s) }),
		"critical": a.Index.Mask(func(s dining.PState) bool { return a.Set("C").Contains(s) }),
	})
}

// runJSON emits the machine-readable report consumed by downstream
// tooling (and recorded in EXPERIMENTS.md).
func runJSON(n, k, curve int, skipExpected bool, opts dining.Opts) error {
	a, err := dining.NewAnalysisOpts(n, k, opts)
	if err != nil {
		return err
	}
	doc := report.Document{
		Model:         "lehmann-rabin",
		Procs:         n,
		StepsPerTick:  k,
		ProductStates: a.Index.Len(),
		Schema:        a.Schema.Name,
	}

	results, err := a.CheckPaperChain()
	if err != nil {
		return err
	}
	origins := dining.PaperStatementOrigins()
	for i, r := range results {
		doc.Arrows = append(doc.Arrows, report.ArrowFrom(origins[i], r))
	}

	direct, err := core.CheckStatement(a.MDP, a.Index, a.ComposedStatement())
	if err != nil {
		return err
	}
	composed := report.ArrowFrom("Section 6.2 (composed)", direct)
	doc.Composed = &composed

	bound, err := a.ExpectedTimeBound()
	if err != nil {
		return err
	}
	loop, err := a.RetryLoop().ExpectedTime()
	if err != nil {
		return err
	}
	expected := report.ExpectedTime{
		RecurrenceLoop: loop.String(),
		DerivedBound:   bound.String(),
	}
	if !skipExpected {
		worst, state, err := a.WorstExpectedTime()
		if err != nil {
			return err
		}
		expected.MeasuredWorst = worst
		expected.MeasuredAtState = fmt.Sprintf("%v", state)
	}
	doc.Expected = &expected

	if curve > 0 {
		points, err := a.ProgressCurve(curve)
		if err != nil {
			return err
		}
		doc.Curve = report.CurveFrom(points)
	}
	return doc.Write(os.Stdout)
}
