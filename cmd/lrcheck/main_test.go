package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallRing(t *testing.T) {
	if err := run([]string{"-n", "2", "-k", "1", "-curve", "8", "-witness"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-n", "2", "-json", "-curve", "4", "-skip-expected"}); err != nil {
		t.Fatalf("run -json: %v", err)
	}
}

func TestRunExport(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "lr")
	if err := run([]string{"-n", "2", "-skip-expected", "-export-prefix", prefix}); err != nil {
		t.Fatalf("run -export-prefix: %v", err)
	}
	for _, suffix := range []string{".tra", ".lab"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("missing export file %s: %v", prefix+suffix, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-n", "zero"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-n", "1"}); err == nil {
		t.Error("ring of one accepted")
	}
}
