package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinScript(t *testing.T) {
	if err := run([]string{"-n", "2", "-k", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCustomScript(t *testing.T) {
	script := `
let p = premise P --1,1--> C : Proposition A.1
check p
print p
`
	path := filepath.Join(t.TempDir(), "script.arrows")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "2", "-script", path}); err != nil {
		t.Fatalf("run custom script: %v", err)
	}
}

func TestRunBadScript(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.arrows")
	if err := os.WriteFile(path, []byte("let x = premise T --99--> C"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "2", "-script", path}); err == nil {
		t.Error("malformed script accepted")
	}
	if err := run([]string{"-n", "2", "-script", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing script file accepted")
	}
}

func TestRunFailingPremiseRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "false.arrows")
	// P --0,1--> C is false: crit takes one time unit.
	if err := os.WriteFile(path, []byte("let x = premise P --0,1--> C"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "2", "-script", path}); err == nil {
		t.Error("false premise accepted under -check-premises")
	}
}
