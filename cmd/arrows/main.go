// Command arrows is the proof-script front end to the calculus of
// time-bounded progress statements: it loads a script of premise /
// weaken / compose / relax / subset / check / print lines (see package
// core), binds it to an enumerated Lehmann–Rabin model so that premises
// and derived statements can be model-checked, and prints the results.
//
// With no -script flag it runs the built-in script reproducing the
// Section 6.2 derivation of the paper.
//
// Usage:
//
//	arrows [-n ring] [-k steps-per-window] [-check-premises] [-script file]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dining"
)

// paperScript is the Section 6.2 derivation in proof-script form.
const paperScript = `# Lynch–Saias–Segala, PODC 1994, Section 6.2:
# the five arrows of the Lehmann–Rabin proof, composed into T --13,1/8--> C.
let a3  = premise T --2,1--> RT+C     : Proposition A.3
let a15 = premise RT --3,1--> F+G+P   : Proposition A.15
let a14 = premise F --2,1/2--> G+P    : Proposition A.14
let a11 = premise G --5,1/4--> P      : Proposition A.11
let a1  = premise P --1,1--> C        : Proposition A.1

# Proposition 3.2 weakenings so the chain connects.
let w15 = weaken a15 + C
let w14 = weaken a14 + G+P+C
let w11 = weaken a11 + P+C
let w1  = weaken a1  + C

# Theorem 3.4 composition; the final C∪C is renamed to C (equal sets).
let chain = compose a3 w15 w14 w11 w1
let main = renameto chain C
check main
print main
`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "arrows:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("arrows", flag.ContinueOnError)
	n := fs.Int("n", 3, "ring size for the bound model")
	k := fs.Int("k", 1, "steps per window for the bound model")
	checkPremises := fs.Bool("check-premises", true, "model-check every premise as it is introduced")
	scriptPath := fs.String("script", "", "proof script file (default: the built-in Section 6.2 derivation)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	script := paperScript
	if *scriptPath != "" {
		data, err := os.ReadFile(*scriptPath)
		if err != nil {
			return err
		}
		script = string(data)
	}

	fmt.Printf("binding model: Lehmann–Rabin n=%d, Unit-Time(k=%d)\n", *n, *k)
	a, err := dining.NewAnalysis(*n, *k, 0)
	if err != nil {
		return err
	}
	fmt.Printf("enumerated %d product states\n\n", a.Index.Len())

	sc := &core.Script[dining.PState]{
		Registry:      a.Sets(),
		Schema:        a.Schema,
		Universe:      a.Universe,
		Model:         a.MDP,
		Index:         a.Index,
		CheckPremises: *checkPremises,
	}
	out, err := sc.Run(script)
	fmt.Print(out)
	return err
}
