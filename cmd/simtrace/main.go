// Command simtrace merges distributed fabric trace files into one
// causally-ordered timeline and analyzes it: the span tree across
// coordinator and workers, the critical path (the chain of spans that
// determined the job's wall clock), per-phase latency histograms
// (lease wait, compute, RPC, merge), a straggler report (chunks slower
// than the p99), and the reassignment chains of expired leases.
//
// Each input is a JSONL trace written by a -trace-out flag of simd,
// lrsim or electcheck (span events in the manifest envelope). The
// files of one run share a trace ID — workers adopt the coordinator's
// — so concatenating the coordinator's file with every worker's
// reconstructs the whole distributed run.
//
// Usage:
//
//	simtrace [-tree N] [-dot] trace.jsonl [trace.jsonl ...]
//
// Output is deterministic for a given set of input spans: ordering
// falls back from timestamps to span IDs, so fixed-clock test traces
// render byte-identically.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/span"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	tree := fs.Int("tree", 0, "timeline tree line cap (0 = default, negative = omit the tree)")
	dot := fs.Bool("dot", false, "emit the span graph as Graphviz DOT (critical path highlighted) instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return errors.New("no trace files given")
	}

	var recs []span.Record
	for _, path := range fs.Args() {
		rs, err := span.ReadFile(path)
		if err != nil {
			return err
		}
		recs = append(recs, rs...)
	}
	if len(recs) == 0 {
		return fmt.Errorf("no spans in %d trace file(s)", fs.NArg())
	}

	tl := span.BuildTimeline(recs)
	if *dot {
		tl.RenderDOT(os.Stdout)
		return nil
	}
	tl.RenderText(os.Stdout, span.RenderOptions{TreeLimit: *tree})
	return nil
}
