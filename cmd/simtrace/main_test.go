package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/span"
)

// writeFixture scripts a tiny two-service trace onto a FakeClock and
// writes it as two files (coordinator and worker), returning the paths.
func writeFixture(t *testing.T, dir string) (string, string) {
	t.Helper()
	clk := fault.NewFakeClock(time.Unix(1_700_000_000, 0))
	coordPath := filepath.Join(dir, "coord.jsonl")
	workPath := filepath.Join(dir, "w1.jsonl")
	coord, err := span.Open(coordPath, span.Options{Service: "coord", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := span.Open(workPath, span.Options{Service: "w1", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	w1.AdoptTrace(coord.TraceID())

	job := coord.Start("job", span.SpanContext{}, span.Str("model", "dining"))
	lease := coord.Start("lease", job.Context(), span.Str("lease", "lease-1"), span.Str("worker", "w1"), span.Int("lo", 0), span.Int("hi", 2))
	wl := w1.Start("worker.lease", lease.Context(), span.Str("worker", "w1"))
	for chunk := 0; chunk < 2; chunk++ {
		end := span.ChunkSpans(w1, wl.Context()).ChunkStart(chunk, 64)
		clk.Advance(time.Duration(1+chunk) * 3 * time.Millisecond)
		end(64, 0)
	}
	wl.End(span.Str("outcome", "delivered"))
	lease.End(span.Str("outcome", "delivered"), span.Int("accepted", 2))
	clk.Advance(time.Millisecond)
	job.End(span.Str("outcome", "complete"))
	for _, tr := range []*span.Tracer{coord, w1} {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return coordPath, workPath
}

// capture runs the CLI with stdout redirected and returns its output.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestSimtraceDeterministic: merging the same fixture twice renders
// byte-identical reports with the expected sections, and the critical
// path is non-empty.
func TestSimtraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	coordPath, workPath := writeFixture(t, dir)

	out1, err := capture(t, []string{coordPath, workPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out2, err := capture(t, []string{coordPath, workPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out1 != out2 {
		t.Errorf("output not deterministic:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	for _, want := range []string{
		"services [coord w1]",
		"timeline:",
		"critical path (",
		"phase latency:",
		"worker.lease",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("output missing %q:\n%s", want, out1)
		}
	}
	if strings.Contains(out1, "critical path (0 hops") {
		t.Errorf("critical path is empty:\n%s", out1)
	}
	// File order must not matter: spans merge by ID, order by time.
	swapped, err := capture(t, []string{workPath, coordPath})
	if err != nil {
		t.Fatalf("run swapped: %v", err)
	}
	if swapped != out1 {
		t.Errorf("output depends on file order:\n--- coord-first\n%s\n--- worker-first\n%s", out1, swapped)
	}
}

// TestSimtraceDOT checks -dot emits a digraph over the same spans.
func TestSimtraceDOT(t *testing.T) {
	dir := t.TempDir()
	coordPath, workPath := writeFixture(t, dir)
	out, err := capture(t, []string{"-dot", coordPath, workPath})
	if err != nil {
		t.Fatalf("run -dot: %v", err)
	}
	if !strings.HasPrefix(out, "digraph trace {") {
		t.Errorf("-dot output does not start with a digraph:\n%s", out)
	}
	if !strings.Contains(out, "color=red") {
		t.Errorf("-dot output has no critical-path highlighting:\n%s", out)
	}
}

// TestSimtraceErrors covers the argument and empty-input error paths.
func TestSimtraceErrors(t *testing.T) {
	if _, err := capture(t, nil); err == nil {
		t.Error("no args: want error")
	}
	if _, err := capture(t, []string{filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Error("missing file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{empty}); err == nil || !strings.Contains(err.Error(), "no spans") {
		t.Errorf("empty trace: err = %v, want 'no spans'", err)
	}
}
