// Command simd runs one Monte Carlo job on the distributed trial
// fabric (internal/fabric) — or locally, for the reference answer.
//
//	simd local      runs the job single-process and prints the estimate.
//	simd coordinate owns the job: it listens for workers, leases out
//	                chunk ranges, merges CRC-checked results
//	                first-valid-wins, and prints the estimate when every
//	                chunk is home.
//	simd work       pulls leases from a coordinator, runs them through
//	                the local parallel engine, heartbeats them alive,
//	                and streams results back.
//
// The contract that makes the fabric boring to operate: for the same
// job flags and -seed, `simd coordinate` with any number of workers —
// workers crashing, leases expiring and being reassigned, results
// arriving out of order or twice — writes a stdout line byte-identical
// to `simd local`. Every trial's RNG derives from (seed, trial index)
// and the coordinator merges chunk accumulators in index order, so the
// cluster is invisible in the math.
//
// Only the canonical result line goes to stdout; everything operational
// (listening address, lease traffic, partial estimates, resume hints)
// goes to stderr, so `diff` between a distributed and a local run means
// what it says.
//
// Faults are first-class: a SIGKILLed worker's chunks are reassigned at
// lease expiry; a SIGKILLed coordinator restarted with the same -state
// file resumes from its durable merge frontier and still prints the
// bit-identical line; a coordinator that loses every worker longer than
// -quorum-timeout prints the partial estimate and a resume token
// instead of hanging forever.
//
// Usage:
//
//	simd local      [job flags] [-workers N]
//	simd coordinate [job flags] [-listen 127.0.0.1:9777] [-addr-file F]
//	                [-state state.json] [-keep 3] [-lease-chunks 4]
//	                [-lease-ttl 3s] [-quorum-timeout 0] [-metrics-out F]
//	                [-hedge] [-hedge-factor 1.5] [-quarantine-corrupt N]
//	                [-min-worker-score S] [-max-worker-leases 2]
//	                [-max-inflight N] [-chaos-net SCRIPT]
//	simd work       -coordinator http://127.0.0.1:9777 [-id NAME]
//	                [-workers N] [-throttle 0] [-breaker-failures 5]
//	                [-breaker-cooldown 1s] [-retry-budget 0]
//	                [-chaos-net SCRIPT]
//
// Job flags (shared by local and coordinate):
//
//	-model dining|election  -n SIZE  -policy NAME  -estimator reachprob|timetotarget
//	-within T  -trials N  -seed S  -max-events N  -max-time T
//	-bitcompat  -quarantine N
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

const usage = `usage: simd <local|coordinate|work> [flags]

  simd local       run the job in this process and print the estimate
  simd coordinate  own the job; lease chunks to workers, merge results
  simd work        pull leases from a coordinator and run them

Run "simd <subcommand> -h" for that subcommand's flags.`

func run(ctx context.Context, args []string) error {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, usage)
		return errors.New("missing subcommand")
	}
	// SIGINT/SIGTERM cancel for a graceful drain; a second signal kills
	// the process the default way (stop re-arms on cancellation).
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	switch args[0] {
	case "local":
		return runLocal(ctx, args[1:])
	case "coordinate":
		return runCoordinate(ctx, args[1:])
	case "work":
		return runWork(ctx, args[1:])
	case "help", "-h", "-help", "--help":
		fmt.Println(usage)
		return nil
	default:
		fmt.Fprintln(os.Stderr, usage)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// jobFlags registers the shared job flags and returns a builder that
// assembles the JobSpec after parsing.
func jobFlags(fs *flag.FlagSet) func() fabric.JobSpec {
	model := fs.String("model", "dining", "model: dining or election")
	n := fs.Int("n", 5, "model size (ring size / process count)")
	policy := fs.String("policy", "slowest", "adversary policy (dining: slowest, random, spiteful, paced:<alpha>; election: slowest)")
	estimator := fs.String("estimator", "reachprob", "estimator: reachprob or timetotarget")
	within := fs.Float64("within", 13, "deadline for the reachprob estimator")
	trials := fs.Int("trials", 2000, "Monte Carlo trial budget")
	seed := fs.Int64("seed", 1, "root seed (per-trial streams derive from it; results are identical for any worker topology)")
	maxEvents := fs.Int("max-events", 0, "per-trial event cap (0 = engine default)")
	maxTime := fs.Float64("max-time", 0, "per-trial simulated-time cap (0 = engine default)")
	bitcompat := fs.Bool("bitcompat", false, "sample compiled moves with the cumulative scan (bit-identical to an uncompiled run)")
	quarantine := fs.Int("quarantine", 0, "panicking trials tolerated per range before aborting")
	return func() fabric.JobSpec {
		return fabric.JobSpec{
			Model:     *model,
			N:         *n,
			Policy:    *policy,
			Estimator: *estimator,
			Within:    *within,
			Trials:    *trials,
			Seed:      *seed,
			MaxEvents: *maxEvents,
			MaxTime:   *maxTime,
			BitCompat: *bitcompat,
			MaxPanics: *quarantine,
		}
	}
}

// jobLine is the canonical stdout prefix — identical for `simd local`
// and `simd coordinate` of the same job, by construction.
func jobLine(spec fabric.JobSpec) string {
	return fmt.Sprintf("%s n=%d policy=%s seed=%d trials=%d", spec.Model, spec.N, spec.Policy, spec.Seed, spec.Trials)
}

// openTracer opens the -trace-out JSONL exporter, or returns nil (spans
// disabled, one nil check per site) when the flag is unset.
func openTracer(path, service string) (*span.Tracer, error) {
	if path == "" {
		return nil, nil
	}
	return span.Open(path, span.Options{Service: service})
}

// jobAttrs is the identity attribute set stamped on root job spans, one
// vocabulary across simd local, coordinate, and the analysis tooling.
func jobAttrs(spec fabric.JobSpec) []span.Attr {
	return []span.Attr{
		span.Str("model", spec.Model),
		span.Int("n", spec.N),
		span.Str("policy", spec.Policy),
		span.Str("estimator", spec.Estimator),
		span.Int64("seed", spec.Seed),
		span.Int("trials", spec.Trials),
		span.Int("chunks", sim.NumChunks(spec.Trials)),
	}
}

// engineHooks builds the chunk-span + pprof-label hooks for a local
// engine run. With a nil tracer the zero hooks are returned and the
// engine pays one nil check per chunk.
func engineHooks(tr *span.Tracer, parent span.SpanContext, spec fabric.JobSpec) fabric.EngineHooks {
	if tr == nil {
		return fabric.EngineHooks{}
	}
	return fabric.EngineHooks{
		Spans: span.ChunkSpans(tr, parent),
		Labels: []string{
			"fabric_job", fmt.Sprintf("%s-n%d-s%d", spec.Model, spec.N, spec.Seed),
		},
	}
}

// reportRun sends the run summary (and quarantine repro seeds, if any)
// to stderr, keeping stdout canonical.
func reportRun(rep sim.RunReport) {
	fmt.Fprintf(os.Stderr, "simd: %s\n", rep)
	for _, pr := range rep.Panics {
		verb := "panicked"
		if pr.Kind == sim.RecordStalled {
			verb = "stalled"
		}
		fmt.Fprintf(os.Stderr, "simd: trial %d %s: %s (trial RNG seed %d)\n", pr.Trial, verb, pr.Value, pr.Seed)
	}
}

func runLocal(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simd local", flag.ContinueOnError)
	job := jobFlags(fs)
	workers := fs.Int("workers", 0, "engine goroutines (0 = all CPUs)")
	traceOut := fs.String("trace-out", "", "write trace spans (job + per-chunk) as JSONL to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner, err := fabric.NewRunner(job())
	if err != nil {
		return err
	}
	tr, err := openTracer(*traceOut, "local")
	if err != nil {
		return err
	}
	if tr != nil {
		defer tr.Close()
	}
	spec := runner.Spec()
	root := tr.Start("job", span.SpanContext{}, jobAttrs(spec)...)
	est, rep, err := runner.Estimate(ctx, *workers, engineHooks(tr, root.Context(), spec))
	outcome := "complete"
	if err != nil {
		outcome = "error"
	}
	root.End(span.Str("outcome", outcome), span.Int("completed", rep.Completed))
	reportRun(rep)
	if errors.Is(err, sim.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "simd: interrupted: partial %s over %d/%d trials\n", est, rep.Completed, rep.Total)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", jobLine(runner.Spec()), est)
	return nil
}

func runCoordinate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simd coordinate", flag.ContinueOnError)
	job := jobFlags(fs)
	listen := fs.String("listen", "127.0.0.1:0", "address to serve the fabric protocol on")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts and tests using -listen :0)")
	state := fs.String("state", "", "persist the merge frontier to this state file after every accepted result; restart with the same -state to resume")
	keep := fs.Int("keep", 3, "state-file generations to retain")
	leaseChunks := fs.Int("lease-chunks", 4, "chunks per lease (64 trials each)")
	leaseTTL := fs.Duration("lease-ttl", 3*time.Second, "lease lifetime without a heartbeat before its chunks are reassigned")
	quorumTimeout := fs.Duration("quorum-timeout", 0, "give up (printing the partial estimate and a resume token) after this long with no worker contact (0 = wait forever)")
	metricsOut := fs.String("metrics-out", "", "write the final fabric metrics snapshot as JSON to this file")
	traceOut := fs.String("trace-out", "", "write trace spans (job, leases, RPCs, merges) as JSONL to this file")
	progress := fs.Duration("progress", 0, "report chunk-frontier progress to stderr at this interval (0 = off)")
	hedge := fs.Bool("hedge", false, "speculatively re-issue straggling leases to idle workers before TTL expiry (duplicates are free: first valid result wins)")
	hedgeFactor := fs.Float64("hedge-factor", 0, "hedge age threshold as a multiple of the p99 lease completion time (0 = default 1.5)")
	quarantineCorrupt := fs.Int("quarantine-corrupt", 0, "blacklist a worker after this many corrupt uploads (0 = off)")
	minWorkerScore := fs.Float64("min-worker-score", 0, "quarantine workers whose health score falls below this floor (0 = off)")
	maxWorkerLeases := fs.Int("max-worker-leases", 0, "max concurrent leases per worker (0 = default 2)")
	maxInflight := fs.Int("max-inflight", 0, "shed lease/heartbeat/result RPCs beyond this many in flight with 429 + Retry-After (0 = unlimited)")
	chaosNet := fs.String("chaos-net", "", "inject server-side network faults per this script, e.g. 'seed=7,drop=0.1,http500=0.05,partition=300ms+500ms' (testing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	// The metrics snapshot must land on every exit path — clean finish,
	// SIGINT/SIGTERM drain, and the -quorum-timeout degraded path — so it
	// is a once-guarded helper deferred here, before anything can fail.
	writeMetrics := func() {}
	if *metricsOut != "" {
		var once sync.Once
		writeMetrics = func() {
			once.Do(func() {
				data, err := json.Marshal(reg.Snapshot())
				if err != nil {
					fmt.Fprintf(os.Stderr, "simd: encoding -metrics-out: %v\n", err)
					return
				}
				if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "simd: writing -metrics-out: %v\n", err)
				}
			})
		}
		defer writeMetrics()
	}

	tr, err := openTracer(*traceOut, "coord")
	if err != nil {
		return err
	}
	if tr != nil {
		defer tr.Close()
	}

	opts := fabric.CoordinatorOptions{
		LeaseChunks:        *leaseChunks,
		LeaseTTL:           *leaseTTL,
		StatePath:          *state,
		Store:              &sim.ArtifactStore{Keep: *keep},
		QuorumTimeout:      *quorumTimeout,
		Metrics:            obs.NewFabricMetrics(reg),
		Tracer:             tr,
		Hedge:              *hedge,
		HedgeFactor:        *hedgeFactor,
		QuarantineCorrupt:  *quarantineCorrupt,
		MinWorkerScore:     *minWorkerScore,
		MaxLeasesPerWorker: *maxWorkerLeases,
		MaxInflightRPCs:    *maxInflight,
	}
	c, err := fabric.NewCoordinator(ctx, job(), opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	addr := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(addr+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "simd: coordinating %s on http://%s\n", jobLine(c.Job()), addr)
	var mw []func(http.Handler) http.Handler
	if *chaosNet != "" {
		script, err := fault.ParseNetScript(*chaosNet)
		if err != nil {
			ln.Close()
			return err
		}
		netw := script.Build("coord", fault.Wall)
		mw = append(mw, netw.Middleware("coord"))
		fmt.Fprintf(os.Stderr, "simd: chaos-net active on coordinator: %s\n", *chaosNet)
		defer func() {
			fmt.Fprintf(os.Stderr, "simd: chaos-net injected %d faults\n", netw.Total())
		}()
	}
	srv := obs.NewHTTPServer(c.Handler(), mw...)
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	defer srv.Close()

	if *progress > 0 {
		start := time.Now()
		rep := obs.NewFuncReporter(os.Stderr, *progress, func() string {
			st := c.Status()
			line := fmt.Sprintf("chunks %d/%d done (%d leased, %d pending), %d reassigned, %d workers live",
				st.ChunksDone, st.Chunks, st.ChunksLeased, st.ChunksPending, st.ChunksReassigned, st.WorkersLive)
			if st.ChunksDone > 0 && st.ChunksDone < st.Chunks {
				remaining := time.Duration(float64(time.Since(start)) / float64(st.ChunksDone) * float64(st.Chunks-st.ChunksDone))
				line += fmt.Sprintf(", eta %s", remaining.Round(time.Second))
			}
			return line
		})
		rep.Start()
		defer rep.Stop()
	}

	waitErr := c.Wait(ctx)

	// Finalize merges whatever the frontier holds — everything on
	// success, the partial frontier on quorum loss or interrupt. The
	// merge itself runs no trials, so it proceeds even when ctx is
	// already cancelled.
	est, rep, ferr := c.Finalize(ctx)
	st := c.Status()
	fmt.Fprintf(os.Stderr, "simd: %d/%d chunks merged; %d leases granted, %d expired, %d chunks reassigned, %d duplicate chunks dropped, %d results rejected\n",
		st.ChunksDone, st.Chunks, st.LeasesGranted, st.LeasesExpired, st.ChunksReassigned, st.DuplicatesDropped, st.ResultsRejected)
	if st.HedgesIssued > 0 || st.WorkersQuarantined > 0 || st.RPCsShed > 0 {
		fmt.Fprintf(os.Stderr, "simd: hardening: %d hedges issued, %d workers quarantined, %d rpcs shed\n",
			st.HedgesIssued, st.WorkersQuarantined, st.RPCsShed)
	}
	reportRun(rep)

	if waitErr == nil && ferr == nil {
		// Complete run: the one canonical stdout line.
		fmt.Printf("%s: %s\n", jobLine(c.Job()), est)
		return nil
	}

	// Graceful degradation: partial estimate + resume token on stderr.
	if rep.Completed > 0 {
		fmt.Fprintf(os.Stderr, "simd: partial estimate over %d/%d trials: %s: %s\n", rep.Completed, rep.Total, jobLine(c.Job()), est)
	}
	if *state != "" {
		fmt.Fprintf(os.Stderr, "simd: resume bit-identically with: simd coordinate -state %s (plus the original job flags)\n", *state)
	} else {
		fmt.Fprintln(os.Stderr, "simd: (run with -state FILE to make interrupted progress resumable)")
	}
	if waitErr != nil {
		if errors.Is(waitErr, context.Canceled) || errors.Is(waitErr, context.DeadlineExceeded) {
			return fmt.Errorf("interrupted after %d/%d chunks: %w", st.ChunksDone, st.Chunks, waitErr)
		}
		return waitErr
	}
	return ferr
}

func runWork(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simd work", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:9777 (required)")
	id := fs.String("id", "", "worker name in leases and logs (default worker-<pid>)")
	workers := fs.Int("workers", 0, "engine goroutines per lease (0 = all CPUs)")
	throttle := fs.Duration("throttle", 0, "pause between finishing a lease and reporting it, lease held (testing/rehearsal)")
	traceOut := fs.String("trace-out", "", "write trace spans (leases, chunks, RPCs) as JSONL to this file")
	breakerFailures := fs.Int("breaker-failures", 5, "consecutive RPC failures before the circuit breaker opens (0 = breaker off)")
	breakerCooldown := fs.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before probing the coordinator again")
	retryBudget := fs.Duration("retry-budget", 0, "total elapsed time allowed per RPC across retries before giving up with a budget error (0 = attempts only)")
	chaosNet := fs.String("chaos-net", "", "inject client-side network faults per this script, e.g. 'seed=7,latency=0.3:1ms:10ms,corrupt-send=0.1:/v1/result' (testing only)")
	metricsOut := fs.String("metrics-out", "", "write the worker metrics snapshot (incl. breaker state) as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		fs.Usage()
		return errors.New("-coordinator is required")
	}
	service := *id
	if service == "" {
		service = fmt.Sprintf("worker-%d", os.Getpid())
	}
	reg := obs.NewRegistry()
	if *metricsOut != "" {
		defer func() {
			data, err := json.Marshal(reg.Snapshot())
			if err == nil {
				err = os.WriteFile(*metricsOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "simd: writing -metrics-out: %v\n", err)
			}
		}()
	}
	client := &http.Client{Timeout: 30 * time.Second}
	if *chaosNet != "" {
		script, err := fault.ParseNetScript(*chaosNet)
		if err != nil {
			return err
		}
		netw := script.Build(service, fault.Wall)
		client.Transport = netw.Transport(service, http.DefaultTransport)
		fmt.Fprintf(os.Stderr, "simd: chaos-net active on worker %s: %s\n", service, *chaosNet)
		defer func() {
			fmt.Fprintf(os.Stderr, "simd: chaos-net injected %d faults\n", netw.Total())
		}()
	}
	w := &fabric.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		Workers:     *workers,
		Throttle:    *throttle,
		Client:      client,
		Retry:       fault.RetryPolicy{MaxElapsed: *retryBudget},
		Report: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "simd: "+format+"\n", args...)
		},
	}
	if *breakerFailures > 0 {
		gauge := obs.BreakerGauge(reg)
		w.Breaker = fault.NewBreaker(fault.BreakerOptions{
			Failures: *breakerFailures,
			Cooldown: *breakerCooldown,
			OnChange: func(from, to fault.BreakerState) {
				gauge(from, to)
				fmt.Fprintf(os.Stderr, "simd: breaker %s -> %s\n", from, to)
			},
		})
	}
	tr, err := openTracer(*traceOut, service)
	if err != nil {
		return err
	}
	if tr != nil {
		defer tr.Close()
	}
	w.Tracer = tr
	return w.Run(ctx)
}
