package main

// Process-level tests for the distributed trial fabric: the test binary
// re-executes itself as a real simd process (TestMain trampoline), so a
// coordinator and its workers are separate OS processes that can be
// SIGKILLed — no mocks between the test and the failure it injects.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// TestMain doubles as the simd entrypoint: with SIMD_RUN_CLI=1 the test
// binary IS simd, letting the tests below spawn and kill real processes
// without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("SIMD_RUN_CLI") == "1" {
		if err := run(context.Background(), os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// proc is one re-exec'd simd process with captured output.
type proc struct {
	cmd    *exec.Cmd
	stdout bytes.Buffer
	stderr bytes.Buffer
}

// startCLI spawns a re-exec'd simd with args.
func startCLI(t *testing.T, args ...string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(os.Args[0], args...)}
	p.cmd.Env = append(os.Environ(), "SIMD_RUN_CLI=1")
	p.cmd.Stdout, p.cmd.Stderr = &p.stdout, &p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// runCLI runs a re-exec'd simd to completion.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	p := startCLI(t, args...)
	err = p.cmd.Wait()
	return p.stdout.String(), p.stderr.String(), err
}

// kill SIGKILLs the process — the crash under test, not a shutdown.
func (p *proc) kill() { _ = p.cmd.Process.Kill() }

// killed reports whether the child died from our SIGKILL rather than
// exiting on its own.
func killed(err error) bool {
	var ee *exec.ExitError
	return errors.As(err, &ee) && ee.ExitCode() == -1
}

// waitAddr waits for the coordinator's -addr-file to appear and returns
// its base URL.
func waitAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(data)) > 0 {
			return "http://" + string(bytes.TrimSpace(data))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("coordinator never wrote its address file")
	return ""
}

// getStatus polls GET /v1/status (which also sweeps lease expiry).
func getStatus(base string) (fabric.Status, error) {
	var st fabric.Status
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitStatus polls until cond holds or the deadline passes.
func waitStatus(t *testing.T, base string, what string, cond func(fabric.Status) bool) fabric.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last fabric.Status
	for time.Now().Before(deadline) {
		st, err := getStatus(base)
		if err == nil {
			last = st
			if cond(st) {
				return st
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("status never reached %q; last %+v", what, last)
	return last
}

// jobArgs is the canonical test job, small enough to finish in well
// under a second of compute.
var jobArgs = []string{"-model", "dining", "-n", "3", "-trials", "768", "-seed", "11", "-within", "13"}

// TestSimdLocal: sanity — the single-process subcommand prints exactly
// one canonical line on stdout.
func TestSimdLocal(t *testing.T) {
	stdout, stderr, err := runCLI(t, append([]string{"local"}, jobArgs...)...)
	if err != nil {
		t.Fatalf("simd local: %v\nstderr:\n%s", err, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "dining n=3 policy=slowest seed=11 trials=768: ") {
		t.Fatalf("simd local stdout = %q, want one canonical line", stdout)
	}
}

// TestSimdWorkerKillRecovery is the PR's acceptance test: a coordinator
// and three workers over loopback, one worker SIGKILLed while it holds
// an unreported lease; the lease expires, its chunks are reassigned to
// the surviving workers, and the coordinator's stdout is byte-identical
// to a single-process run of the same job.
func TestSimdWorkerKillRecovery(t *testing.T) {
	want, _, err := runCLI(t, append([]string{"local"}, jobArgs...)...)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	state := filepath.Join(dir, "state.json")
	coord := startCLI(t, append([]string{"coordinate",
		"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-state", state,
		"-lease-chunks", "2", "-lease-ttl", "500ms"}, jobArgs...)...)
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.cmd.Wait() }()
	defer coord.kill()
	base := waitAddr(t, addrFile)

	// Worker 1 computes its lease instantly but holds the result for 30s
	// (heartbeating all the while) — a worker that is alive and owes work.
	w1 := startCLI(t, "work", "-coordinator", base, "-id", "victim", "-throttle", "30s")
	w1Done := make(chan error, 1)
	go func() { w1Done <- w1.cmd.Wait() }()
	waitStatus(t, base, "victim holds a lease", func(st fabric.Status) bool {
		return st.ChunksLeased >= 1
	})

	// SIGKILL it mid-hold: the lease dies with it.
	w1.kill()
	if err := <-w1Done; !killed(err) {
		t.Fatalf("victim worker exit = %v, want SIGKILL", err)
	}
	st := waitStatus(t, base, "victim's lease expired", func(st fabric.Status) bool {
		return st.LeasesExpired >= 1
	})
	if st.ChunksReassigned < 1 {
		t.Fatalf("lease expired but no chunks reassigned: %+v", st)
	}

	// Two fresh workers finish the job, reassigned chunks included.
	var survivors []*proc
	for _, id := range []string{"survivor-1", "survivor-2"} {
		survivors = append(survivors, startCLI(t, "work", "-coordinator", base, "-id", id))
	}
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator: %v\nstderr:\n%s", err, coord.stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not finish")
	}
	for i, w := range survivors {
		if err := w.cmd.Wait(); err != nil {
			t.Errorf("survivor-%d: %v\nstderr:\n%s", i+1, err, w.stderr.String())
		}
	}

	if got := coord.stdout.String(); got != want {
		t.Errorf("coordinator stdout differs from single-process run:\n--- want\n%s--- got\n%s", want, got)
	}
	if !strings.Contains(coord.stderr.String(), "reassigned") {
		t.Errorf("coordinator stderr does not report reassignment:\n%s", coord.stderr.String())
	}
}

// TestSimdTracedKillRecovery is the tracing acceptance test: the
// worker-kill scenario re-run with -trace-out on the coordinator and
// every worker. The merged timeline must show the killed worker's lease
// expiring, the reassignment chain that re-covered its chunks, and a
// non-empty critical path in the rendered report.
func TestSimdTracedKillRecovery(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	coordTrace := filepath.Join(dir, "coord.trace")
	coord := startCLI(t, append([]string{"coordinate",
		"-listen", "127.0.0.1:0", "-addr-file", addrFile,
		"-lease-chunks", "2", "-lease-ttl", "500ms",
		"-trace-out", coordTrace}, jobArgs...)...)
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.cmd.Wait() }()
	defer coord.kill()
	base := waitAddr(t, addrFile)

	w1 := startCLI(t, "work", "-coordinator", base, "-id", "victim", "-throttle", "30s",
		"-trace-out", filepath.Join(dir, "victim.trace"))
	w1Done := make(chan error, 1)
	go func() { w1Done <- w1.cmd.Wait() }()
	waitStatus(t, base, "victim holds a lease", func(st fabric.Status) bool {
		return st.ChunksLeased >= 1
	})
	w1.kill()
	if err := <-w1Done; !killed(err) {
		t.Fatalf("victim worker exit = %v, want SIGKILL", err)
	}
	waitStatus(t, base, "victim's lease expired", func(st fabric.Status) bool {
		return st.LeasesExpired >= 1
	})

	survivorTrace := filepath.Join(dir, "survivor.trace")
	w2 := startCLI(t, "work", "-coordinator", base, "-id", "survivor", "-trace-out", survivorTrace)
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator: %v\nstderr:\n%s", err, coord.stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not finish")
	}
	if err := w2.cmd.Wait(); err != nil {
		t.Fatalf("survivor: %v\nstderr:\n%s", err, w2.stderr.String())
	}

	// Merge the coordinator's and the survivor's traces. The victim died
	// by SIGKILL, so its file is unflushed/empty — the coordinator's side
	// of its lease must carry the story on its own.
	var recs []span.Record
	for _, path := range []string{coordTrace, survivorTrace} {
		rs, err := span.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		recs = append(recs, rs...)
	}
	tl := span.BuildTimeline(recs)

	var expired *span.Record
	for _, r := range tl.Spans {
		if r.Name == "lease" && r.AttrStr("worker") == "victim" && r.AttrStr("outcome") == "expired" {
			expired = r
		}
	}
	if expired == nil {
		t.Fatalf("merged timeline has no expired lease span for the victim; spans: %d", len(tl.Spans))
	}
	if got := expired.AttrInt("reassigned"); got < 1 {
		t.Errorf("expired lease span reports %d chunks reassigned, want >= 1", got)
	}

	chains := tl.ReassignmentChains()
	if len(chains) == 0 {
		t.Fatal("merged timeline has no reassignment chains")
	}
	found := false
	for _, ch := range chains {
		if len(ch.Leases) >= 2 && ch.Leases[0].AttrStr("worker") == "victim" &&
			ch.Leases[len(ch.Leases)-1].AttrStr("outcome") == "delivered" {
			found = true
		}
	}
	if !found {
		t.Errorf("no chain runs from the victim's expired lease to a delivered one: %+v", chains)
	}

	if path := tl.CriticalPath(); len(path) == 0 {
		t.Error("critical path is empty")
	}
	var report bytes.Buffer
	tl.RenderText(&report, span.RenderOptions{})
	for _, want := range []string{"critical path (", "reassignment chains:", "victim, expired"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("rendered report missing %q:\n%s", want, report.String())
		}
	}
}

// TestSimdCoordinatorResume: a coordinator SIGKILLed mid-run and
// restarted on the same -state file resumes from its durable frontier
// and still prints the byte-identical line.
func TestSimdCoordinatorResume(t *testing.T) {
	want, _, err := runCLI(t, append([]string{"local"}, jobArgs...)...)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")
	coordArgs := func(addrFile string) []string {
		return append([]string{"coordinate",
			"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-state", state,
			"-lease-chunks", "2", "-lease-ttl", "500ms"}, jobArgs...)
	}

	// Leg 1: a throttled worker delivers a few leases slowly; the
	// coordinator is SIGKILLed with the job incomplete.
	addr1 := filepath.Join(dir, "addr1")
	c1 := startCLI(t, coordArgs(addr1)...)
	c1Done := make(chan error, 1)
	go func() { c1Done <- c1.cmd.Wait() }()
	base1 := waitAddr(t, addr1)
	w1 := startCLI(t, "work", "-coordinator", base1, "-id", "slow", "-throttle", "300ms")
	w1Done := make(chan error, 1)
	go func() { w1Done <- w1.cmd.Wait() }()
	waitStatus(t, base1, "some chunks merged, some missing", func(st fabric.Status) bool {
		return st.ChunksDone >= 1 && !st.Complete
	})
	c1.kill()
	if err := <-c1Done; !killed(err) {
		t.Fatalf("coordinator exit = %v, want SIGKILL", err)
	}
	w1.kill() // the worker would only spin on connection-refused retries
	<-w1Done

	// Leg 2: restart on the same state file; a fresh worker finishes.
	addr2 := filepath.Join(dir, "addr2")
	c2 := startCLI(t, coordArgs(addr2)...)
	c2Done := make(chan error, 1)
	go func() { c2Done <- c2.cmd.Wait() }()
	defer c2.kill()
	base2 := waitAddr(t, addr2)
	if st, err := getStatus(base2); err != nil || st.ChunksDone < 1 {
		t.Fatalf("restarted coordinator lost the frontier: %+v, %v", st, err)
	}
	w2 := startCLI(t, "work", "-coordinator", base2, "-id", "finisher")
	select {
	case err := <-c2Done:
		if err != nil {
			t.Fatalf("restarted coordinator: %v\nstderr:\n%s", err, c2.stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted coordinator did not finish")
	}
	if err := w2.cmd.Wait(); err != nil {
		t.Errorf("finisher: %v\nstderr:\n%s", err, w2.stderr.String())
	}
	if got := c2.stdout.String(); got != want {
		t.Errorf("resumed coordinator stdout differs from single-process run:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestSimdQuorumLoss: a coordinator that never hears from a worker for
// -quorum-timeout exits with the partial estimate and a resume hint on
// stderr — graceful degradation, not a hang — and still flushes its
// -metrics-out snapshot on the way out.
func TestSimdQuorumLoss(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	state := filepath.Join(dir, "state.json")
	metricsOut := filepath.Join(dir, "metrics.json")
	coord := startCLI(t, append([]string{"coordinate",
		"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-state", state,
		"-lease-ttl", "200ms", "-quorum-timeout", "1s",
		"-metrics-out", metricsOut}, jobArgs...)...)
	done := make(chan error, 1)
	go func() { done <- coord.cmd.Wait() }()
	waitAddr(t, addrFile)

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coordinator exited clean with no workers")
		}
	case <-time.After(30 * time.Second):
		coord.kill()
		t.Fatal("coordinator hung past its quorum timeout")
	}
	stderr := coord.stderr.String()
	if !strings.Contains(stderr, "quorum") {
		t.Errorf("stderr does not mention quorum loss:\n%s", stderr)
	}
	if !strings.Contains(stderr, "resume bit-identically") {
		t.Errorf("stderr does not offer the resume token:\n%s", stderr)
	}
	if out := coord.stdout.String(); out != "" {
		t.Errorf("degraded run wrote to stdout: %q (canonical line must mean success)", out)
	}
	// The degraded exit must still flush the metrics snapshot.
	data, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("-metrics-out not written on the quorum-loss path: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics-out is not a parseable snapshot: %v", err)
	}
	if _, ok := snap.Counters["fabric.leases_granted"]; !ok {
		t.Errorf("snapshot missing fabric.leases_granted: %+v", snap.Counters)
	}
	if _, ok := snap.Histograms["fabric.lease_wait_seconds"]; !ok {
		t.Errorf("snapshot missing fabric.lease_wait_seconds histogram: %v", data)
	}
}
