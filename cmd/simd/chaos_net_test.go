package main

// Network-adversary chaos: partition storms over real coordinator and
// worker processes, with seeded fault injection on both sides of the
// wire — latency, dropped connections, injected 5xx, corrupted and
// truncated bodies, slow-drip reads, corrupt-on-send result uploads,
// and a mid-job partition of one worker. Workers may be quarantined or
// give up; legs resume from the durable -state frontier until a
// coordinator leg completes — and its stdout must be byte-identical to
// the uninterrupted single-process run.
//
// Gated by CHAOS_STORMS (the storm count); replay a failing storm with
// CHAOS_SEED=<seed>. `make chaos-net` raises both.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestChaosNetworkStorm: coordinator plus three workers per leg, every
// process behind a seeded fault.Network. One worker's result uploads
// are corrupted on send (exercising 422 retries and corrupt-upload
// quarantine), one worker is partitioned from the coordinator mid-job
// (exercising the breaker and lease reassignment), and the coordinator
// itself injects 500s, drops and latency server-side (exercising the
// worker's retry/hedge machinery). The storm only ends when a leg's
// stdout matches `simd local` byte-for-byte.
func TestChaosNetworkStorm(t *testing.T) {
	stormsEnv := os.Getenv("CHAOS_STORMS")
	if stormsEnv == "" {
		t.Skip("set CHAOS_STORMS to run the network chaos storm")
	}
	storms, err := strconv.Atoi(stormsEnv)
	if err != nil || storms < 1 {
		t.Fatalf("CHAOS_STORMS %q: %v", stormsEnv, err)
	}

	want, _, err := runCLI(t, append([]string{"local"}, jobArgs...)...)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	seed := chaosSeed(t)

	for storm := 0; storm < storms; storm++ {
		rng := rand.New(rand.NewSource(seed + int64(storm)))
		dir := t.TempDir()
		state := filepath.Join(dir, "state.json")

		completed := false
		for leg := 0; leg < 40 && !completed; leg++ {
			addrFile := filepath.Join(dir, "addr-"+strconv.Itoa(leg))
			coordScript := fmt.Sprintf("seed=%d,latency=0.2:1ms:10ms,drop=0.03,http500=0.03",
				rng.Int63n(1<<30)+1)
			coord := startCLI(t, append([]string{"coordinate",
				"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-state", state,
				"-lease-chunks", "2", "-lease-ttl", "400ms", "-quorum-timeout", "5s",
				"-hedge", "-quarantine-corrupt", "4", "-max-inflight", "64",
				"-chaos-net", coordScript}, jobArgs...)...)
			coordDone := make(chan error, 1)
			go func() { coordDone <- coord.cmd.Wait() }()
			base := waitAddr(t, addrFile)

			var workers []*proc
			for i := 0; i < 3; i++ {
				script := fmt.Sprintf(
					"seed=%d,latency=0.3:1ms:15ms,drop=0.05,http500=0.03,corrupt=0.03,truncate=0.03,slowdrip=0.1:256:1ms",
					rng.Int63n(1<<30)+1)
				switch i {
				case 0:
					// The saboteur: its result uploads are corrupted in
					// flight often enough to trip the quarantine threshold.
					script += ",corrupt-send=0.3:/v1/result"
				case 1:
					// The partitioned worker: cut off from the coordinator
					// for a window in the middle of the job.
					script += fmt.Sprintf(",partition=%dms+%dms",
						100+rng.Int63n(300), 400+rng.Int63n(600))
				}
				workers = append(workers, startCLI(t, "work", "-coordinator", base,
					"-id", "w"+strconv.Itoa(leg)+"-"+strconv.Itoa(i),
					"-breaker-failures", "3", "-breaker-cooldown", "200ms",
					"-chaos-net", script))
			}

			var legErr error
			select {
			case legErr = <-coordDone:
			case <-time.After(90 * time.Second):
				coord.kill()
				t.Fatalf("storm %d leg %d (seed %d): coordinator hung", storm, leg, seed)
			}
			for _, w := range workers {
				// Workers are allowed to die on their own here — quarantined,
				// retries exhausted across a partition, breaker starvation.
				// Survivors exit when the coordinator disappears; kill is the
				// idempotent backstop.
				w.kill()
				_ = w.cmd.Wait()
			}

			switch {
			case legErr == nil:
				if got := coord.stdout.String(); got != want {
					t.Fatalf("storm %d leg %d (seed %d): output differs from single-process run:\n--- want\n%s--- got\n%s",
						storm, leg, seed, want, got)
				}
				completed = true
			case strings.Contains(coord.stderr.String(), "quorum"):
				// Every worker was lost to the storm and the coordinator gave
				// up gracefully; the next leg resumes from the frontier.
			default:
				t.Fatalf("storm %d leg %d (seed %d): unexpected coordinator failure: %v\nstderr:\n%s",
					storm, leg, seed, legErr, coord.stderr.String())
			}
		}
		if !completed {
			t.Fatalf("storm %d (seed %d): did not converge in 40 legs", storm, seed)
		}
	}
}
