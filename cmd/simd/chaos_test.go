package main

// Fabric-level chaos: storms of SIGKILLs against real coordinator and
// worker processes. Every leg of every storm may lose workers, the
// coordinator, or both; the storm only ends when a coordinator leg runs
// to completion — and its stdout must be byte-identical to the
// uninterrupted single-process run. Crashes cost progress, never
// correctness.
//
// Gated by CHAOS_STORMS (the storm count); replay a failing storm with
// CHAOS_SEED=<seed>. `make chaos` raises both.

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// chaosSeed returns the storm seed: CHAOS_SEED when set (replay), fresh
// otherwise; always logged so a failure is replayable.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos: replaying CHAOS_SEED=%d", v)
		return v
	}
	v := time.Now().UnixNano()
	t.Logf("chaos seed %d (replay with CHAOS_SEED=%d)", v, v)
	return v
}

// TestChaosWorkerKillStorm: coordinator plus three workers per leg;
// random workers are SIGKILLed mid-run, and half the legs SIGKILL the
// coordinator too. Legs resume from the durable -state frontier until
// one completes; the surviving stdout must match the single-process run
// byte-for-byte.
func TestChaosWorkerKillStorm(t *testing.T) {
	stormsEnv := os.Getenv("CHAOS_STORMS")
	if stormsEnv == "" {
		t.Skip("set CHAOS_STORMS to run the fabric kill storm")
	}
	storms, err := strconv.Atoi(stormsEnv)
	if err != nil || storms < 1 {
		t.Fatalf("CHAOS_STORMS %q: %v", stormsEnv, err)
	}

	want, _, err := runCLI(t, append([]string{"local"}, jobArgs...)...)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	seed := chaosSeed(t)

	for storm := 0; storm < storms; storm++ {
		rng := rand.New(rand.NewSource(seed + int64(storm)))
		dir := t.TempDir()
		state := filepath.Join(dir, "state.json")

		completed := false
		for leg := 0; leg < 40 && !completed; leg++ {
			addrFile := filepath.Join(dir, "addr-"+strconv.Itoa(leg))
			coord := startCLI(t, append([]string{"coordinate",
				"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-state", state,
				"-lease-chunks", "2", "-lease-ttl", "300ms", "-quorum-timeout", "3s"}, jobArgs...)...)
			coordDone := make(chan error, 1)
			go func() { coordDone <- coord.cmd.Wait() }()
			base := waitAddr(t, addrFile)

			var workers []*proc
			for i := 0; i < 3; i++ {
				throttle := time.Duration(rng.Int63n(int64(150 * time.Millisecond)))
				workers = append(workers, startCLI(t, "work", "-coordinator", base,
					"-id", "w"+strconv.Itoa(leg)+"-"+strconv.Itoa(i),
					"-throttle", throttle.String()))
			}
			// The injected faults: a random worker dies mid-run, and on half
			// the legs the coordinator does too.
			victim := workers[rng.Intn(len(workers))]
			wTimer := time.AfterFunc(time.Duration(rng.Int63n(int64(400*time.Millisecond))), victim.kill)
			var cTimer *time.Timer
			if rng.Intn(2) == 0 {
				cTimer = time.AfterFunc(time.Duration(rng.Int63n(int64(600*time.Millisecond))), coord.kill)
			}

			var legErr error
			select {
			case legErr = <-coordDone:
			case <-time.After(60 * time.Second):
				coord.kill()
				t.Fatalf("storm %d leg %d (seed %d): coordinator hung", storm, leg, seed)
			}
			wTimer.Stop()
			if cTimer != nil {
				cTimer.Stop()
			}
			for _, w := range workers {
				w.kill() // idempotent; survivors just get reaped
				_ = w.cmd.Wait()
			}

			switch {
			case legErr == nil:
				if got := coord.stdout.String(); got != want {
					t.Fatalf("storm %d leg %d (seed %d): output differs from single-process run:\n--- want\n%s--- got\n%s",
						storm, leg, seed, want, got)
				}
				completed = true
			case killed(legErr):
				// The coordinator crash we injected; the next leg resumes from
				// the durable frontier.
			case strings.Contains(coord.stderr.String(), "quorum"):
				// Every worker died first and the coordinator gave up
				// gracefully — also a resumable outcome.
			default:
				t.Fatalf("storm %d leg %d (seed %d): unexpected coordinator failure: %v\nstderr:\n%s",
					storm, leg, seed, legErr, coord.stderr.String())
			}
		}
		if !completed {
			t.Fatalf("storm %d (seed %d): did not converge in 40 legs", storm, seed)
		}
	}
}
