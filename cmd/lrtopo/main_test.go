package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "2", "-horizon", "9"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run([]string{"-n", "1"}); err == nil {
		t.Error("single-process topology accepted")
	}
}
