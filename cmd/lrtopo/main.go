// Command lrtopo explores the topology generalization of Section 7 of the
// paper ("topologies that are more general than rings"): it runs the
// unmodified Lehmann–Rabin process code on a ring and on an open path of
// the same size and compares, exactly and against every digitized
// Unit-Time adversary, the worst-case progress curves and expected times.
//
// Usage:
//
//	lrtopo [-n procs] [-k steps-per-window] [-horizon 13]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/prob"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lrtopo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lrtopo", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of processes")
	k := fs.Int("k", 1, "steps per process per unit-time window")
	horizon := fs.Int("horizon", 13, "curve horizon")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type study struct {
		name  string
		curve []core.CurvePoint
		worst float64
	}
	var studies []study
	for _, topo := range []dining.Topology{dining.Ring(*n), dining.Path(*n)} {
		a, err := dining.NewGeneralAnalysis(topo, *k, 0)
		if err != nil {
			return err
		}
		curve, err := a.ProgressCurve(*horizon)
		if err != nil {
			return err
		}
		worst, _, err := a.WorstExpectedTime()
		if err != nil {
			return err
		}
		studies = append(studies, study{name: topo.Name, curve: curve, worst: worst})
		fmt.Printf("%s: %d product states\n", topo.Name, a.Index.Len())
	}

	fmt.Printf("\nWorst-case P[T reaches C within t], exact, every digitized adversary (k=%d):\n", *k)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "t\t%s\t%s\n", studies[0].name, studies[1].name)
	for h := 0; h <= *horizon; h++ {
		fmt.Fprintf(tw, "%d\t%v\t%v\n", h, studies[0].curve[h].WorstProb, studies[1].curve[h].WorstProb)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	p := prob.NewRat(1, 8)
	for _, st := range studies {
		if tight, ok := core.TightestTime(st.curve, p); ok {
			fmt.Printf("\n%s: tightest horizon for p=1/8 is t=%d; worst expected time to C = %.4f",
				st.name, tight, st.worst)
		}
	}
	fmt.Println()
	return nil
}
