package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestRunSmall(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "3", "-k", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "1"}); err == nil {
		t.Error("single-process election accepted")
	}
}

func TestRunSampled(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "3", "-k", "1", "-sample", "200", "-workers", "4"}); err != nil {
		t.Fatalf("run -sample: %v", err)
	}
}

// TestRunSampledLargerSizes cross-checks the exact engine against the
// Monte Carlo sampler at sizes only the on-the-fly explorer handles
// comfortably: the derived bound must dominate the sampled mean at every
// size, and -workers must not change the exact results (the sampled
// stream is pinned separately by TestBitCompatIdenticalOutput).
func TestRunSampledLargerSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("larger product enumerations")
	}
	for _, n := range []string{"5", "6"} {
		if err := run(context.Background(), []string{"-n", n, "-k", "1", "-sample", "200", "-workers", "4", "-seed", "7"}); err != nil {
			t.Fatalf("run -n %s -sample: %v", n, err)
		}
	}
}

func TestRunMemBudgetExceeded(t *testing.T) {
	err := run(context.Background(), []string{"-n", "4", "-k", "1", "-mem-budget", "128"})
	if err == nil || !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("tiny -mem-budget: err = %v, want memory-budget failure", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	tests := [][]string{
		{"-n", "0"},
		{"-n", "-4"},
		{"-k", "0"},
		{"-k", "-1"},
		{"-sample", "-10"},
		{"-workers", "-1"},
		{"-quarantine", "-1"},
		{"-budget", "-5s"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSampledCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-n", "3", "-sample", "500"})
	if err == nil {
		t.Fatal("cancelled sampled run reported success")
	}
}

func TestRunSampledCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "state.json")
	base := []string{"-n", "3", "-sample", "300", "-seed", "5"}
	if err := run(context.Background(), append(base, "-checkpoint", ck, "-workers", "2")); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	cs, err := sim.LoadCheckpointSet(ck)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	cp := cs["sample"]
	if cp == nil || !cp.Complete() {
		t.Fatalf("sample stage checkpoint missing or incomplete: %+v", cp)
	}
	// Resuming from the complete state file re-derives the estimate from
	// stored chunks; mismatched parameters must refuse.
	if err := run(context.Background(), append(base, "-resume", ck, "-workers", "1")); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := run(context.Background(), append(base, "-resume", ck, "-seed", "6")); err == nil {
		t.Error("resume with mismatched -seed accepted")
	}
}

func TestRunBadObservabilityFlags(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	tests := [][]string{
		{"-n", "3", "-progress", "-1s"},
		{"-n", "3", "-manifest", filepath.Join(missing, "run.jsonl")},
		{"-n", "3", "-metrics-out", filepath.Join(missing, "m.json")},
		{"-n", "3", "-pprof", "bad addr:xyz"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunSampledManifest: a sampled run records its sampling phase and the
// engine's counters in the manifest; an unsampled run still closes the
// manifest cleanly with no phases.
func TestRunSampledManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.jsonl")
	if err := run(context.Background(), []string{"-n", "3", "-sample", "128", "-seed", "5",
		"-manifest", manifest}); err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	log, err := obs.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if meta := log.Meta(); meta == nil || meta.Tool != "electcheck" || meta.Seed != 5 {
		t.Fatalf("manifest meta = %+v", log.Meta())
	}
	if log.Summary == nil || len(log.Summary.Phases) != 1 || log.Summary.Phases[0].Name != "sample" {
		t.Fatalf("summary = %+v", log.Summary)
	}
	if got := log.Summary.Metrics.Counters["sim.trials_completed"]; got != 128 {
		t.Errorf("manifest counted %d trials, want 128", got)
	}

	bare := filepath.Join(dir, "bare.jsonl")
	if err := run(context.Background(), []string{"-n", "3", "-manifest", bare}); err != nil {
		t.Fatalf("unsampled run: %v", err)
	}
	log, err = obs.LoadManifest(bare)
	if err != nil {
		t.Fatal(err)
	}
	if log.Summary == nil || len(log.Summary.Phases) != 0 {
		t.Errorf("unsampled summary = %+v", log.Summary)
	}
}

// TestBitCompatIdenticalOutput: sampling with the compiled cache under
// -bitcompat (cumulative-scan sampling) must print a byte-identical
// report to -nocompile; the alias-table default agrees in distribution
// only.
func TestBitCompatIdenticalOutput(t *testing.T) {
	args := []string{"-n", "3", "-k", "1", "-sample", "200", "-seed", "3", "-workers", "4"}
	compat, err := captureRun(t, context.Background(), append(args, "-bitcompat"))
	if err != nil {
		t.Fatalf("-bitcompat run: %v", err)
	}
	direct, err := captureRun(t, context.Background(), append(args, "-nocompile"))
	if err != nil {
		t.Fatalf("-nocompile run: %v", err)
	}
	if compat != direct {
		t.Errorf("-bitcompat output differs from -nocompile:\nbitcompat:\n%s\ndirect:\n%s", compat, direct)
	}
}

// captureRun runs the CLI with stdout redirected to a pipe and returns
// what it printed, so two runs can be compared byte-for-byte.
func captureRun(t *testing.T, ctx context.Context, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan string)
	go func() {
		var sb strings.Builder
		if _, err := io.Copy(&sb, r); err != nil {
			t.Errorf("drain stdout pipe: %v", err)
		}
		done <- sb.String()
	}()
	old := os.Stdout
	os.Stdout = w
	runErr := run(ctx, args)
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}
