package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "3", "-k", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run([]string{"-n", "1"}); err == nil {
		t.Error("single-process election accepted")
	}
}
