package main

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func TestRunSmall(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "3", "-k", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "1"}); err == nil {
		t.Error("single-process election accepted")
	}
}

func TestRunSampled(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "3", "-k", "1", "-sample", "200", "-workers", "4"}); err != nil {
		t.Fatalf("run -sample: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	tests := [][]string{
		{"-n", "0"},
		{"-n", "-4"},
		{"-k", "0"},
		{"-k", "-1"},
		{"-sample", "-10"},
		{"-workers", "-1"},
		{"-quarantine", "-1"},
		{"-budget", "-5s"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSampledCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-n", "3", "-sample", "500"})
	if err == nil {
		t.Fatal("cancelled sampled run reported success")
	}
}

func TestRunSampledCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "state.json")
	base := []string{"-n", "3", "-sample", "300", "-seed", "5"}
	if err := run(context.Background(), append(base, "-checkpoint", ck, "-workers", "2")); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	cs, err := sim.LoadCheckpointSet(ck)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	cp := cs["sample"]
	if cp == nil || !cp.Complete() {
		t.Fatalf("sample stage checkpoint missing or incomplete: %+v", cp)
	}
	// Resuming from the complete state file re-derives the estimate from
	// stored chunks; mismatched parameters must refuse.
	if err := run(context.Background(), append(base, "-resume", ck, "-workers", "1")); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := run(context.Background(), append(base, "-resume", ck, "-seed", "6")); err == nil {
		t.Error("resume with mismatched -seed accepted")
	}
}
