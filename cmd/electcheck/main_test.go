package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "3", "-k", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run([]string{"-n", "1"}); err == nil {
		t.Error("single-process election accepted")
	}
}

func TestRunSampled(t *testing.T) {
	if err := run([]string{"-n", "3", "-k", "1", "-sample", "200", "-workers", "4"}); err != nil {
		t.Fatalf("run -sample: %v", err)
	}
}
