// Command electcheck runs the second case study: randomized leader
// election by coin flipping, analyzed with the same proof method as the
// Lehmann–Rabin algorithm — per-level arrow statements, Proposition 3.2
// weakening, Theorem 3.4 composition, and an expected-time bound from
// per-level retry loops, each validated against the exact worst case of
// the digitized Unit-Time product. The product is generated on the fly
// into compressed-sparse-row form (sharing the Monte Carlo engine's
// compiled transition cache) and solved by -workers parallel sweeps, so
// sizes far beyond the dense enumerator's practical limit stay exact;
// -mem-budget caps the resident transition structure.
//
// With -sample, the exact analysis is cross-validated by dense-time Monte
// Carlo: the requested number of election runs is sharded across a worker
// pool (-workers) by the parallel engine in internal/sim, and the sampled
// expected election time is compared against the derived bound. For a
// fixed -seed the sampled estimate is bit-identical for any worker count.
//
// The sampling stage is resilient: SIGINT/SIGTERM or an expired -budget
// drains in-flight chunks and prints the partial estimate with its
// completed-trial count; -checkpoint/-resume persist and restore progress
// bit-identically, and -quarantine tolerates panicking trials (each
// recorded with a single-RunOnce repro seed).
//
// The run is observable with the same flags as lrsim: -progress for a
// live sampling progress line, -manifest for a JSONL run manifest,
// -metrics-out for a final metrics snapshot, -pprof for live profiling,
// -trace-out for a JSONL trace (one span per sampling chunk under a root
// job span) that cmd/simtrace merges into a timeline.
//
// Usage:
//
//	electcheck [-n procs] [-k steps-per-window] [-mem-budget bytes] \
//	           [-sample trials] [-workers N] [-seed 1] \
//	           [-budget 10m] [-checkpoint state.json] [-resume state.json] \
//	           [-keep 3] [-quarantine N] [-trial-timeout 30s] \
//	           [-progress 2s] [-manifest run.jsonl] [-trace-out run.trace] \
//	           [-metrics-out metrics.json] [-pprof localhost:6060] [-nocompile] [-bitcompat]
//
// The sampled model is compiled (sim.Compile) before the run; -nocompile
// disables the transition cache for debugging or perf comparison, and
// -bitcompat keeps the cache but samples with the cumulative scan — with
// it the printed estimate is byte-identical to an uncompiled run of the
// same seed (without it they agree in distribution, not bit for bit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/election"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "electcheck:", err)
		os.Exit(1)
	}
}

// usageError reports a bad flag value together with the usage text.
func usageError(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return fmt.Errorf(format, args...)
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("electcheck", flag.ContinueOnError)
	n := fs.Int("n", 4, "number of processes")
	k := fs.Int("k", 1, "steps per process per unit-time window")
	sample := fs.Int("sample", 0, "also run this many dense-time Monte Carlo election trials (0 = off)")
	workers := fs.Int("workers", 0, "worker goroutines for the exact-engine sweeps and for sharding -sample trials (0 = all CPUs; results are identical for any value)")
	memBudget := fs.Int64("mem-budget", 0, "abort exact enumeration beyond this many bytes of transition structure (0 = unlimited)")
	seed := fs.Int64("seed", 1, "root seed for -sample trials (reproducible for any -workers)")
	budget := fs.Duration("budget", 0, "wall-clock budget for the whole run; on expiry the sampling stage drains and prints partial estimates (0 = none)")
	checkpoint := fs.String("checkpoint", "", "persist -sample progress to this JSON state file as trials complete")
	resume := fs.String("resume", "", "resume -sample from this state file (and keep updating it); bit-identical to an uninterrupted run")
	quarantine := fs.Int("quarantine", 0, "panicking -sample trials tolerated (recorded with repro seeds, excluded) before aborting")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-trial watchdog: quarantine a -sample trial that runs longer than this wall-clock budget (0 = off)")
	keep := fs.Int("keep", 3, "checkpoint generations to retain (current + keep-1 backups); loads fall back to the newest valid one")
	progress := fs.Duration("progress", 0, "print a live -sample progress line to stderr at this interval (0 = off)")
	manifest := fs.String("manifest", "", "record a JSONL run manifest (events + final summary) to this file")
	traceOut := fs.String("trace-out", "", "record a JSONL trace (one span per -sample chunk under a root job span) to this file; analyze with simtrace")
	metricsOut := fs.String("metrics-out", "", "write the final metrics registry snapshot as JSON to this file")
	pprof := fs.String("pprof", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address for the duration of the run")
	nocompile := fs.Bool("nocompile", false, "disable the compiled-model transition cache for -sample (estimates are identical; for debugging and perf comparison)")
	bitcompat := fs.Bool("bitcompat", false, "sample compiled moves with the cumulative scan instead of alias tables: slower, but bit-identical to -nocompile for the same seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *n <= 0:
		return usageError(fs, "-n must be positive, got %d", *n)
	case *k <= 0:
		return usageError(fs, "-k must be positive, got %d", *k)
	case *sample < 0:
		return usageError(fs, "-sample must be >= 0, got %d", *sample)
	case *workers < 0:
		return usageError(fs, "-workers must be >= 0, got %d", *workers)
	case *budget < 0:
		return usageError(fs, "-budget must be >= 0, got %v", *budget)
	case *memBudget < 0:
		return usageError(fs, "-mem-budget must be >= 0, got %d", *memBudget)
	case *quarantine < 0:
		return usageError(fs, "-quarantine must be >= 0, got %d", *quarantine)
	case *trialTimeout < 0:
		return usageError(fs, "-trial-timeout must be >= 0, got %v", *trialTimeout)
	case *keep < 1:
		return usageError(fs, "-keep must be >= 1, got %d", *keep)
	case *progress < 0:
		return usageError(fs, "-progress must be >= 0, got %v", *progress)
	}

	flagValues := map[string]string{}
	fs.VisitAll(func(f *flag.Flag) { flagValues[f.Name] = f.Value.String() })
	ins, err := obs.Setup(obs.Config{
		Tool:        "electcheck",
		Seed:        *seed,
		Options:     flagValues,
		Resume:      *resume,
		TotalTrials: *sample,
		Progress:    *progress,
		MetricsOut:  *metricsOut,
		Manifest:    *manifest,
		Pprof:       *pprof,
	})
	if err != nil {
		return usageError(fs, "%v", err)
	}
	// A tracer when -trace-out is set, else nil: every span call below
	// no-ops on the nil tracer, so the untraced run pays one nil check.
	var tracer *span.Tracer
	if *traceOut != "" {
		tracer, err = span.Open(*traceOut, span.Options{Service: "electcheck"})
		if err != nil {
			return err
		}
	}
	root := tracer.Start("job", span.SpanContext{},
		span.Str("tool", "electcheck"), span.Int("n", *n), span.Int("k", *k),
		span.Int("sample", *sample), span.Int64("seed", *seed))

	runErr := analysis(ctx, ins, tracer, root.Context(), *n, *k, *sample, *workers, *memBudget, *seed, *budget,
		*checkpoint, *resume, *quarantine, *trialTimeout, *keep, *nocompile, *bitcompat)
	outcome := "complete"
	if runErr != nil {
		outcome = "error"
	}
	root.End(span.Str("outcome", outcome))
	if cerr := tracer.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if cerr := ins.Close(runErr); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return runErr
}

func analysis(ctx context.Context, ins *obs.Instrumentation, tracer *span.Tracer, traceParent span.SpanContext,
	n, k, sample, workers int, memBudget, seed int64,
	budget time.Duration, checkpoint, resume string, quarantine int,
	trialTimeout time.Duration, keep int, nocompile, bitcompat bool) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop) // second signal kills the process the default way
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, budget, fmt.Errorf("wall-clock budget %v expired", budget))
		defer cancel()
	}

	fmt.Printf("coin-flipping leader election: n=%d, digitized Unit-Time with k=%d\n", n, k)
	a, err := election.NewAnalysisOpts(n, k, election.Opts{Workers: workers, MemBudget: memBudget})
	if err != nil {
		return err
	}
	fmt.Printf("enumerated product: %d states\n\n", a.Index.Len())

	fmt.Println("Per-level arrows (round rule), worst case over all digitized adversaries:")
	results, err := a.CheckLevels()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "statement\tclaimed p\tmeasured worst p\tverdict")
	allHold := true
	for _, r := range results {
		verdict := "HOLDS"
		if !r.Holds {
			verdict = "FAILS"
			allHold = false
		}
		fmt.Fprintf(tw, "%s --%v--> %s\t%v\t%v\t%s\n",
			r.Stmt.From.Name, r.Stmt.Time, r.Stmt.To.Name, r.Stmt.Prob, r.WorstProb, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	proof, err := a.BuildProof()
	if err != nil {
		return err
	}
	fmt.Println("\nComposed derivation:")
	fmt.Print(proof.Render())

	bound, err := a.ExpectedTimeBound()
	if err != nil {
		return err
	}
	worst, err := a.WorstExpectedTime()
	if err != nil {
		return err
	}
	fmt.Printf("\nExpected election time: derived bound Σ 2/p_k = %v ≈ %.4f; measured worst case %.4f\n",
		bound, bound.Float64(), worst)

	if sample > 0 {
		var model sched.Model[election.State]
		model, err = election.New(n)
		if err != nil {
			return err
		}
		if !nocompile {
			model = sim.Compile[election.State](model)
		}
		store := &sim.ArtifactStore{Keep: keep}
		if sm := ins.Metrics(); sm != nil {
			store.Metrics = sm
		}
		ckPath := checkpoint
		if ckPath == "" {
			ckPath = resume
		}
		popts := sim.ParallelOptions{Workers: workers, Seed: seed, MaxPanics: quarantine,
			NoCompile: nocompile, TrialTimeout: trialTimeout}
		if sm := ins.Metrics(); sm != nil {
			popts.Metrics = sm
		}
		// The nil-tracer gate must stay explicit: assigning a typed-nil
		// *ChunkSpanner to the SpanHooks interface would defeat the
		// engine's nil check.
		if tracer != nil {
			popts.SpanHooks = span.ChunkSpans(tracer, traceParent, span.Str("stage", "sample"))
			popts.PprofLabels = []string{"fabric_job", fmt.Sprintf("electcheck-n%d-s%d", n, seed), "stage", "sample"}
		}
		var cs sim.CheckpointSet
		const label = "sample"
		if ckPath != "" {
			if resume != "" {
				loaded, info, lerr := store.Load(resume)
				if lerr != nil {
					return lerr
				}
				cs = loaded
				if len(info.Corrupt) > 0 {
					fmt.Fprintf(os.Stderr, "electcheck: corrupt checkpoint generation(s) skipped: %s\n",
						strings.Join(info.Corrupt, ", "))
				}
				if info.Generation > 0 {
					fmt.Fprintf(os.Stderr, "electcheck: resuming from backup generation %d (%s)\n",
						info.Generation, info.Path)
				}
			} else {
				cs = sim.CheckpointSet{}
			}
			popts.Resume = cs[label]
			popts.CheckpointSink = func(cp *sim.Checkpoint) error {
				cs[label] = cp
				return store.Save(ckPath, cs)
			}
		}
		ins.PhaseStart(label)
		sum, rep, err := sim.EstimateTimeToTargetParallel[election.State](ctx, model,
			func() sim.Policy[election.State] { return sim.Slowest[election.State]() },
			election.State.HasLeader, sample,
			sim.Options[election.State]{BitCompat: bitcompat}, popts)
		ins.PhaseDone(label, sum.String(), rep.String(), err)
		if rep.Quarantined > 0 {
			fmt.Fprintf(os.Stderr, "electcheck: %d trials quarantined (%d panicked, %d stalled):\n",
				rep.Quarantined, rep.Quarantined-rep.Stalled, rep.Stalled)
			for _, pr := range rep.Panics {
				verb := "panicked"
				if pr.Kind == sim.RecordStalled {
					verb = "stalled"
				}
				fmt.Fprintf(os.Stderr, "  trial %d %s: %s — replay: sim.ReproTrial(..., %d, %d)\n", pr.Trial, verb, pr.Value, seed, pr.Trial)
			}
		}
		if errors.Is(err, sim.ErrInterrupted) {
			fmt.Printf("\nMonte Carlo cross-check interrupted: %s\n", rep)
			if rep.Completed > 0 {
				fmt.Printf("partial time to leader: %s (no bound verdict from a partial sample)\n", sum.String())
			}
			if ckPath != "" {
				fmt.Printf("resume bit-identically with: electcheck -resume %s (plus the original flags)\n", ckPath)
			} else {
				fmt.Println("(run with -checkpoint FILE to make interrupted progress resumable)")
			}
			return fmt.Errorf("interrupted after %d/%d sampled trials: %w", rep.Completed, rep.Total, context.Cause(ctx))
		}
		if err != nil {
			return err
		}
		mean, err := sum.Mean()
		if err != nil {
			return err
		}
		fmt.Printf("\nMonte Carlo cross-check (%d dense-time trials, slowest scheduler): time to leader %s\n",
			sample, sum.String())
		if mean > bound.Float64() {
			return fmt.Errorf("sampled mean election time %.4f exceeds the derived bound %.4f", mean, bound.Float64())
		}
	}

	if !allHold {
		return fmt.Errorf("some level statements fail")
	}
	return nil
}
