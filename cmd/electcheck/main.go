// Command electcheck runs the second case study: randomized leader
// election by coin flipping, analyzed with the same proof method as the
// Lehmann–Rabin algorithm — per-level arrow statements, Proposition 3.2
// weakening, Theorem 3.4 composition, and an expected-time bound from
// per-level retry loops, each validated against the exact worst case of
// the digitized Unit-Time product.
//
// With -sample, the exact analysis is cross-validated by dense-time Monte
// Carlo: the requested number of election runs is sharded across a worker
// pool (-workers) by the parallel engine in internal/sim, and the sampled
// expected election time is compared against the derived bound. For a
// fixed -seed the sampled estimate is bit-identical for any worker count.
//
// Usage:
//
//	electcheck [-n procs] [-k steps-per-window] \
//	           [-sample trials] [-workers N] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/election"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "electcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("electcheck", flag.ContinueOnError)
	n := fs.Int("n", 4, "number of processes")
	k := fs.Int("k", 1, "steps per process per unit-time window")
	sample := fs.Int("sample", 0, "also run this many dense-time Monte Carlo election trials (0 = off)")
	workers := fs.Int("workers", 0, "worker goroutines sharding -sample trials (0 = all CPUs)")
	seed := fs.Int64("seed", 1, "root seed for -sample trials (reproducible for any -workers)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("coin-flipping leader election: n=%d, digitized Unit-Time with k=%d\n", *n, *k)
	a, err := election.NewAnalysis(*n, *k, 0)
	if err != nil {
		return err
	}
	fmt.Printf("enumerated product: %d states\n\n", a.Index.Len())

	fmt.Println("Per-level arrows (round rule), worst case over all digitized adversaries:")
	results, err := a.CheckLevels()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "statement\tclaimed p\tmeasured worst p\tverdict")
	allHold := true
	for _, r := range results {
		verdict := "HOLDS"
		if !r.Holds {
			verdict = "FAILS"
			allHold = false
		}
		fmt.Fprintf(tw, "%s --%v--> %s\t%v\t%v\t%s\n",
			r.Stmt.From.Name, r.Stmt.Time, r.Stmt.To.Name, r.Stmt.Prob, r.WorstProb, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	proof, err := a.BuildProof()
	if err != nil {
		return err
	}
	fmt.Println("\nComposed derivation:")
	fmt.Print(proof.Render())

	bound, err := a.ExpectedTimeBound()
	if err != nil {
		return err
	}
	worst, err := a.WorstExpectedTime()
	if err != nil {
		return err
	}
	fmt.Printf("\nExpected election time: derived bound Σ 2/p_k = %v ≈ %.4f; measured worst case %.4f\n",
		bound, bound.Float64(), worst)

	if *sample > 0 {
		model, err := election.New(*n)
		if err != nil {
			return err
		}
		sum, err := sim.EstimateTimeToTargetParallel[election.State](model,
			func() sim.Policy[election.State] { return sim.Slowest[election.State]() },
			election.State.HasLeader, *sample,
			sim.Options[election.State]{},
			sim.ParallelOptions{Workers: *workers, Seed: *seed})
		if err != nil {
			return err
		}
		mean, err := sum.Mean()
		if err != nil {
			return err
		}
		fmt.Printf("\nMonte Carlo cross-check (%d dense-time trials, slowest scheduler): time to leader %s\n",
			*sample, sum.String())
		if mean > bound.Float64() {
			return fmt.Errorf("sampled mean election time %.4f exceeds the derived bound %.4f", mean, bound.Float64())
		}
	}

	if !allHold {
		return fmt.Errorf("some level statements fail")
	}
	return nil
}
