package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-configs", "2x1", "-curve", "8", "-election", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSkips(t *testing.T) {
	if err := run([]string{"-configs", "2x1", "-curve", "0", "-election", "0"}); err != nil {
		t.Fatalf("run with skips: %v", err)
	}
}

func TestParseConfigs(t *testing.T) {
	got, err := parseConfigs("3x1, 4x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (config{n: 3, k: 1}) || got[1] != (config{n: 4, k: 2}) {
		t.Errorf("parseConfigs = %v", got)
	}
	for _, bad := range []string{"", "3", "3x", "ax1", "3xb"} {
		if _, err := parseConfigs(bad); err == nil {
			t.Errorf("config %q accepted", bad)
		}
	}
}
