// Command reprotables regenerates the Markdown tables of EXPERIMENTS.md
// from scratch: the per-arrow worst cases across (n, k) configurations,
// the direct-vs-composed comparison, the expected-time rows, the progress
// curve, and the election levels. Paste the output into EXPERIMENTS.md
// after any change to the models or the checker.
//
// Usage:
//
//	reprotables [-configs 3x1,3x2] [-curve 16] [-election 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/election"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reprotables:", err)
		os.Exit(1)
	}
}

type config struct {
	n, k int
}

func run(args []string) error {
	fs := flag.NewFlagSet("reprotables", flag.ContinueOnError)
	configsFlag := fs.String("configs", "3x1,3x2", "comma-separated NxK Lehmann–Rabin configurations")
	curveHorizon := fs.Int("curve", 16, "progress-curve horizon (0 to skip)")
	electionN := fs.Int("election", 4, "election size (0 to skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	configs, err := parseConfigs(*configsFlag)
	if err != nil {
		return err
	}

	analyses := make([]*dining.Analysis, len(configs))
	for i, cfg := range configs {
		a, err := dining.NewAnalysis(cfg.n, cfg.k, 0)
		if err != nil {
			return err
		}
		analyses[i] = a
	}

	if err := arrowTable(configs, analyses); err != nil {
		return err
	}
	if err := composedTable(configs, analyses); err != nil {
		return err
	}
	if err := expectedTable(configs, analyses); err != nil {
		return err
	}
	if *curveHorizon > 0 {
		if err := curveTable(analyses[0], *curveHorizon); err != nil {
			return err
		}
	}
	if *electionN > 1 {
		if err := electionTable(*electionN); err != nil {
			return err
		}
	}
	return nil
}

func parseConfigs(s string) ([]config, error) {
	var out []config
	for _, part := range strings.Split(s, ",") {
		nk := strings.SplitN(strings.TrimSpace(part), "x", 2)
		if len(nk) != 2 {
			return nil, fmt.Errorf("config %q is not NxK", part)
		}
		n, err := strconv.Atoi(nk[0])
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(nk[1])
		if err != nil {
			return nil, err
		}
		out = append(out, config{n: n, k: k})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no configurations")
	}
	return out, nil
}

func arrowTable(configs []config, analyses []*dining.Analysis) error {
	fmt.Println("### Paper arrows: measured worst case per configuration")
	fmt.Println()
	header := "| Arrow (paper) | Claimed p |"
	sep := "|---|---|"
	for _, cfg := range configs {
		header += fmt.Sprintf(" n=%d,k=%d |", cfg.n, cfg.k)
		sep += "---|"
	}
	fmt.Println(header)
	fmt.Println(sep)

	origins := dining.PaperStatementOrigins()
	columns := make([][]core.CheckResult[dining.PState], len(analyses))
	for i, a := range analyses {
		results, err := a.CheckPaperChain()
		if err != nil {
			return err
		}
		columns[i] = results
	}
	for row := range origins {
		st := columns[0][row].Stmt
		line := fmt.Sprintf("| `%s --%v--> %s` (%s) | %v |",
			st.From.Name, st.Time, st.To.Name, origins[row], st.Prob)
		for i := range analyses {
			line += fmt.Sprintf(" %v |", columns[i][row].WorstProb)
		}
		fmt.Println(line)
	}
	fmt.Println()
	return nil
}

func composedTable(configs []config, analyses []*dining.Analysis) error {
	fmt.Println("### Composed claim: direct worst case vs derived bound")
	fmt.Println()
	fmt.Println("| Config | direct worst-case P | composed bound |")
	fmt.Println("|---|---|---|")
	for i, a := range analyses {
		direct, err := core.CheckStatement(a.MDP, a.Index, a.ComposedStatement())
		if err != nil {
			return err
		}
		fmt.Printf("| n=%d, k=%d | %v | %v |\n", configs[i].n, configs[i].k, direct.WorstProb, direct.Stmt.Prob)
	}
	fmt.Println()
	return nil
}

func expectedTable(configs []config, analyses []*dining.Analysis) error {
	fmt.Println("### Expected time: measured worst case vs paper bound")
	fmt.Println()
	fmt.Println("| Config | measured worst E[time to C] | best-case counterpart | paper bound |")
	fmt.Println("|---|---|---|---|")
	for i, a := range analyses {
		worst, _, err := a.WorstExpectedTime()
		if err != nil {
			return err
		}
		best, err := a.BestExpectedTime()
		if err != nil {
			return err
		}
		bound, err := a.ExpectedTimeBound()
		if err != nil {
			return err
		}
		fmt.Printf("| n=%d, k=%d | %.4f | %.4f | %v |\n", configs[i].n, configs[i].k, worst, best, bound)
	}
	fmt.Println()
	return nil
}

func curveTable(a *dining.Analysis, horizon int) error {
	points, err := a.ProgressCurve(horizon)
	if err != nil {
		return err
	}
	fmt.Printf("### Progress curve at n=%d, k=%d\n\n", a.N, a.K)
	var head, sep, row strings.Builder
	head.WriteString("| t |")
	sep.WriteString("|---|")
	row.WriteString("| P |")
	for _, pt := range points {
		fmt.Fprintf(&head, " %d |", pt.Horizon)
		sep.WriteString("---|")
		fmt.Fprintf(&row, " %v |", pt.WorstProb)
	}
	fmt.Println(head.String())
	fmt.Println(sep.String())
	fmt.Println(row.String())
	fmt.Println()
	return nil
}

func electionTable(n int) error {
	a, err := election.NewAnalysis(n, 1, 0)
	if err != nil {
		return err
	}
	results, err := a.CheckLevels()
	if err != nil {
		return err
	}
	fmt.Printf("### Election levels at n=%d, k=1\n\n", n)
	fmt.Println("| Level statement | claimed p | measured worst p |")
	fmt.Println("|---|---|---|")
	for _, r := range results {
		fmt.Printf("| `%s --%v--> %s` | %v | %v |\n",
			r.Stmt.From.Name, r.Stmt.Time, r.Stmt.To.Name, r.Stmt.Prob, r.WorstProb)
	}
	fmt.Println()
	return nil
}
