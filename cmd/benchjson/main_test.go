package main

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const rawBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkParallelTrials-4   	      37	  31460580 ns/op	      8137 trials/s	24263347 B/op	  462018 allocs/op
BenchmarkMetricsOverhead/disabled-4 	       5	  33045894 ns/op	      7747 trials/s	24263347 B/op	  462018 allocs/op
BenchmarkMetricsOverhead/enabled-4  	       5	  34445218 ns/op	      7432 trials/s	24263360 B/op	  462019 allocs/op
PASS
`

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkMetricsOverhead/enabled-4  	       5	  34445218 ns/op	 7432 trials/s	24263360 B/op	  462019 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkMetricsOverhead/enabled-4" || r.Iterations != 5 {
		t.Errorf("parsed %+v", r)
	}
	want := map[string]float64{"ns/op": 34445218, "trials/s": 7432, "B/op": 24263360, "allocs/op": 462019}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %s = %g, want %g", unit, r.Metrics[unit], v)
		}
	}

	for _, line := range []string{"", "PASS", "goos: linux", "Benchmark x y", "BenchmarkFoo 10"} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-result line %q parsed", line)
		}
	}
}

func TestRunRawAndJSONInput(t *testing.T) {
	// Raw bench text on stdin, JSON document on stdout.
	var sb strings.Builder
	if err := run(nil, strings.NewReader(rawBench), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(rep.Benchmarks) != 3 || rep.GoVersion == "" {
		t.Fatalf("report = %+v", rep)
	}

	// The same lines arriving as a `go test -json` stream, written to -o.
	// test2json splits each result line into a name fragment (no newline)
	// and a metrics fragment, so the stream is built the way the real tool
	// emits it.
	var jsonl strings.Builder
	emit := func(e event) {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		jsonl.Write(b)
		jsonl.WriteByte('\n')
	}
	for _, line := range strings.Split(strings.TrimSuffix(rawBench, "\n"), "\n") {
		if name, rest, ok := strings.Cut(line, " "); ok && strings.HasPrefix(name, "Benchmark") {
			emit(event{Action: "output", Package: "repro", Test: name, Output: name + " \t"})
			emit(event{Action: "output", Package: "repro", Test: name, Output: rest + "\n"})
			continue
		}
		emit(event{Action: "output", Package: "repro", Output: line + "\n"})
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-o", out}, strings.NewReader(jsonl.String()), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 Report
	if err := json.Unmarshal(data, &rep2); err != nil {
		t.Fatal(err)
	}
	if len(rep2.Benchmarks) != 3 || rep2.Benchmarks[2].Metrics["allocs/op"] != 462019 {
		t.Errorf("json-stream report = %+v", rep2)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-x"}, strings.NewReader(""), nil); err == nil {
		t.Error("bad args accepted")
	}
	if err := run(nil, strings.NewReader("no benchmarks here\n"), nil); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

// writeReport marshals a Report fixture to a temp file for -compare tests.
func writeReport(t *testing.T, dir, name string, results ...Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Report{GoVersion: "go", GOOS: "linux", GOARCH: "amd64", Benchmarks: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{
			"ns/op": 1000, "allocs/op": 500, "trials/s": 7000, "widgets": 3,
		}},
		Result{Name: "BenchmarkGone-4", Iterations: 10, Metrics: map[string]float64{"ns/op": 1}},
	)

	// Within threshold everywhere (and a dropped benchmark): the gate passes.
	ok := writeReport(t, dir, "ok.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{
			"ns/op": 1050, "allocs/op": 90, "trials/s": 6800, "widgets": 9,
		}})
	var sb strings.Builder
	if err := run([]string{"-compare", oldPath, ok}, nil, &sb); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, sb.String())
	}
	for _, want := range []string{"improved", "missing", "no regressions"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("compare output lacks %q:\n%s", want, sb.String())
		}
	}

	// A /op metric up past the threshold: exit with an error.
	slow := writeReport(t, dir, "slow.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{
			"ns/op": 1200, "allocs/op": 500, "trials/s": 7000, "widgets": 3,
		}})
	sb.Reset()
	if err := run([]string{"-compare", oldPath, slow}, nil, &sb); err == nil {
		t.Errorf("ns/op regression passed the gate:\n%s", sb.String())
	}

	// A /s metric down past the threshold: also an error; a custom unit
	// ("widgets") moving wildly is informational only.
	thr := writeReport(t, dir, "thr.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{
			"ns/op": 1000, "allocs/op": 500, "trials/s": 5000, "widgets": 400,
		}})
	sb.Reset()
	err := run([]string{"-compare", oldPath, thr}, nil, &sb)
	if err == nil {
		t.Errorf("trials/s regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "1 metric(s) regressed") {
		t.Errorf("widgets should not count as a regression: %v", err)
	}
	// A looser threshold lets the same diff through.
	sb.Reset()
	if err := run([]string{"-compare", oldPath, thr, "-threshold", "0.5"}, nil, &sb); err != nil {
		t.Errorf("loose threshold still failed: %v", err)
	}
}

// TestCompareMetricMissing: a metric the baseline had but the new run
// lost must fail the gate — a vanished trials/s column is not a pass.
func TestCompareMetricMissing(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"ns/op": 1000, "trials/s": 7000}})
	lost := writeReport(t, dir, "lost.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"ns/op": 1000}})
	var sb strings.Builder
	err := run([]string{"-compare", oldPath, lost}, nil, &sb)
	if err == nil {
		t.Fatalf("missing trials/s metric passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "metric missing") {
		t.Errorf("output does not name the missing metric:\n%s", sb.String())
	}
}

// TestCompareZeroAndNaNBaselines: a zero /op baseline regresses on any
// increase instead of dividing by zero, a zero rate baseline cannot
// regress, and NaN on either side fails rather than reading as "ok".
func TestCompareZeroAndNaNBaselines(t *testing.T) {
	dir := t.TempDir()

	// 0 allocs/op baseline; new run allocates: regression.
	zeroOp := writeReport(t, dir, "zero_op.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"allocs/op": 0}})
	alloc := writeReport(t, dir, "alloc.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"allocs/op": 1}})
	if err := run([]string{"-compare", zeroOp, alloc}, nil, io.Discard); err == nil {
		t.Error("0 -> 1 allocs/op passed the gate")
	}
	// Same zero baseline, still zero: fine.
	if err := run([]string{"-compare", zeroOp, zeroOp}, nil, io.Discard); err != nil {
		t.Errorf("0 -> 0 allocs/op failed: %v", err)
	}

	// Zero rate baseline: any new rate is not a regression.
	zeroRate := writeReport(t, dir, "zero_rate.json",
		Result{Name: "BenchmarkB-4", Iterations: 10, Metrics: map[string]float64{"trials/s": 0}})
	someRate := writeReport(t, dir, "some_rate.json",
		Result{Name: "BenchmarkB-4", Iterations: 10, Metrics: map[string]float64{"trials/s": 5}})
	if err := run([]string{"-compare", zeroRate, someRate}, nil, io.Discard); err != nil {
		t.Errorf("0 -> 5 trials/s failed the gate: %v", err)
	}

	// A NaN metric cannot arrive through a JSON artifact (the encoding
	// rejects it), but checkFloors guards against one anyway: a floor on
	// a NaN measurement is a violation, never a pass.
	nanRep := Report{Benchmarks: []Result{
		{Name: "BenchmarkB-4", Iterations: 10, Metrics: map[string]float64{"trials/s": math.NaN()}},
	}}
	var sb strings.Builder
	if v := checkFloors([]floor{{bench: "BenchmarkB", unit: "trials/s", min: 1}}, nanRep, &sb); v != 1 {
		t.Errorf("NaN measurement yielded %d floor violations, want 1:\n%s", v, sb.String())
	}
}

// TestCompareFloor: the repeatable -floor flag bounds the new artifact
// absolutely — below the floor (or above, for /op ceilings), or not
// measured at all, fails the gate regardless of the relative diff.
func TestCompareFloor(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"trials/s": 7000, "allocs/op": 0}})
	newPath := writeReport(t, dir, "new.json",
		Result{Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"trials/s": 7100, "allocs/op": 0}})

	// Satisfied floor (name given without the -4 suffix) and ceiling.
	if err := run([]string{"-compare", oldPath, newPath,
		"-floor", "BenchmarkA:trials/s=7000", "-floor", "BenchmarkA:allocs/op=0"}, nil, io.Discard); err != nil {
		t.Errorf("satisfied floors failed the gate: %v", err)
	}
	// Floor above the measured rate: violation even though the diff improved.
	var sb strings.Builder
	err := run([]string{"-compare", oldPath, newPath, "-floor", "BenchmarkA:trials/s=8000"}, nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "floor") {
		t.Errorf("violated floor passed the gate (err=%v):\n%s", err, sb.String())
	}
	// Floor on a benchmark the artifact does not have: violation.
	if err := run([]string{"-compare", oldPath, newPath, "-floor", "BenchmarkNope:trials/s=1"}, nil, io.Discard); err == nil {
		t.Error("floor on an unmeasured benchmark passed the gate")
	}
	// Floor on a metric the benchmark does not report: violation.
	if err := run([]string{"-compare", oldPath, newPath, "-floor", "BenchmarkA:widgets/s=1"}, nil, io.Discard); err == nil {
		t.Error("floor on an unreported metric passed the gate")
	}
	// Malformed floor specs are usage errors.
	for _, bad := range []string{"BenchmarkA:trials/s", "BenchmarkA=5", ":trials/s=5", "BenchmarkA:=5", "BenchmarkA:trials/s=x", "BenchmarkA:trials/s=NaN"} {
		if err := run([]string{"-compare", oldPath, newPath, "-floor", bad}, nil, io.Discard); err == nil {
			t.Errorf("malformed -floor %q accepted", bad)
		}
	}
}

func TestCompareBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json",
		Result{Name: "BenchmarkA-4", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-compare"},
		{"-compare", good},
		{"-compare", good, good, "-threshold", "0"},
		{"-compare", good, good, "-threshold", "x"},
		{"-compare", good, good, "extra", "args"},
		{"-compare", filepath.Join(dir, "nope.json"), good},
		{"-compare", good, empty},
	} {
		if err := run(args, nil, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Identical files: trivially no regressions.
	if err := run([]string{"-compare", good, good}, nil, io.Discard); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}
}
