// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact. It accepts either the raw benchmark text or the `go test
// -json` event stream (each line a test2json record) on stdin, extracts
// the benchmark result lines, and writes one JSON document with every
// parsed metric — ns/op, B/op, allocs/op, and custom b.ReportMetric
// columns such as trials/s.
//
// With -compare, benchjson is a perf-regression gate instead: it diffs
// two of its own JSON artifacts and exits non-zero when any metric moved
// in the bad direction by more than the threshold. Units ending in "/op"
// (ns/op, B/op, allocs/op) regress upward; units ending in "/s"
// (trials/s) regress downward; anything else is reported but never fails
// the gate. Benchmarks present only in the old file are noted, not fatal
// (renames and retirements happen); a *metric* that an old benchmark
// reported but the new run lost IS fatal — a vanished trials/s column
// must not read as a pass — as is a NaN on either side, and a zero
// baseline for a /op unit regresses on any increase rather than
// dividing by zero.
//
// The repeatable -floor flag adds absolute constraints on the new
// artifact, independent of the old one: -floor 'Benchmark:unit=value'
// fails the gate when the named metric is below value (units ending in
// "/op" are ceilings instead: they fail above value). The benchmark name
// matches with or without the -GOMAXPROCS suffix, so one floor covers
// runs at any -cpu setting.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -json ./... | benchjson -o BENCH_sim.json
//	benchjson -compare BENCH_sim.json new.json [-threshold 0.10] [-floor 'BenchmarkParallelTrials:trials/s=150000']
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// GOMAXPROCS suffix, e.g. "BenchmarkMetricsOverhead/enabled-4".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported column.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson writes.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// event is the subset of a test2json record benchjson needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var out string
	switch {
	case len(args) == 0:
	case len(args) == 2 && args[0] == "-o":
		out = args[1]
	case len(args) >= 1 && args[0] == "-compare":
		return compare(args[1:], stdout)
	default:
		return fmt.Errorf("usage: benchjson [-o file] < bench-output\n       benchjson -compare old.json new.json [-threshold 0.10]")
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Result{},
	}
	// test2json splits a benchmark result across output events — the name
	// (ending in "\t", no newline) arrives separately from the metrics —
	// so JSON-stream fragments are reassembled per test until a newline
	// completes the logical line.
	pending := map[string]string{}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// `go test -json` wraps every output line in a JSON record; raw
		// bench output is used as-is.
		if strings.HasPrefix(line, "{") {
			var e event
			if err := json.Unmarshal([]byte(line), &e); err == nil {
				if e.Action != "output" {
					continue
				}
				key := e.Package + "\x00" + e.Test
				buf := pending[key] + e.Output
				if !strings.HasSuffix(buf, "\n") {
					pending[key] = buf
					continue
				}
				delete(pending, key)
				line = strings.TrimSuffix(buf, "\n")
			}
		}
		if r, ok := parseBenchLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// floor is one -floor constraint: an absolute bound on a metric of the
// new artifact. For "/op" units min is a ceiling (costs must stay
// below); for everything else it is a floor (rates must stay above).
type floor struct {
	bench, unit string
	min         float64
}

// parseFloor parses a -floor argument of the form Benchmark:unit=value.
func parseFloor(s string) (floor, error) {
	spec, val, okEq := strings.Cut(s, "=")
	bench, unit, okColon := strings.Cut(spec, ":")
	if !okEq || !okColon || bench == "" || unit == "" {
		return floor{}, fmt.Errorf("-floor wants Benchmark:unit=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(v) {
		return floor{}, fmt.Errorf("-floor value in %q is not a number", s)
	}
	return floor{bench: bench, unit: unit, min: v}, nil
}

// matches reports whether the floor names this benchmark, with or
// without the -GOMAXPROCS suffix go test appends.
func (f floor) matches(name string) bool {
	return name == f.bench || strings.HasPrefix(name, f.bench+"-")
}

// compare implements the perf-regression gate:
//
//	benchjson -compare old.json new.json [-threshold t] [-floor Benchmark:unit=value]...
//
// Every metric of every old benchmark is diffed against the new artifact
// and a relative move past the threshold in the bad direction — or a
// metric the new run lost, or a NaN — is a regression; -floor adds
// absolute bounds on the new artifact. Any failure is reported with a
// non-nil error so the gate exits 1.
func compare(args []string, stdout io.Writer) error {
	usage := fmt.Errorf("usage: benchjson -compare old.json new.json [-threshold 0.10] [-floor Benchmark:unit=value]...")
	threshold := 0.10
	var floors []floor
	var paths []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-threshold":
			if i+1 >= len(args) {
				return usage
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || math.IsNaN(v) || v <= 0 {
				return fmt.Errorf("-threshold wants a positive fraction, got %q", args[i])
			}
			threshold = v
		case args[i] == "-floor":
			if i+1 >= len(args) {
				return usage
			}
			i++
			f, err := parseFloor(args[i])
			if err != nil {
				return err
			}
			floors = append(floors, f)
		case strings.HasPrefix(args[i], "-"):
			return usage
		default:
			paths = append(paths, args[i])
		}
	}
	if len(paths) != 2 {
		return usage
	}
	oldRep, err := loadReport(paths[0])
	if err != nil {
		return err
	}
	newRep, err := loadReport(paths[1])
	if err != nil {
		return err
	}
	newByName := map[string]Result{}
	for _, r := range newRep.Benchmarks {
		newByName[r.Name] = r
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmetric\told\tnew\tdelta\tverdict")
	regressions, missing := 0, 0
	for _, old := range oldRep.Benchmarks {
		cur, ok := newByName[old.Name]
		if !ok {
			missing++
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\tmissing in %s\n", old.Name, paths[1])
			continue
		}
		units := make([]string, 0, len(old.Metrics))
		for unit := range old.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov := old.Metrics[unit]
			nv, ok := cur.Metrics[unit]
			if !ok {
				// A column the baseline had but the new run lost would
				// otherwise let a vanished trials/s pass the gate.
				regressions++
				fmt.Fprintf(tw, "%s\t%s\t%g\t-\t-\tREGRESSION (metric missing)\n", old.Name, unit, ov)
				continue
			}
			if math.IsNaN(ov) || math.IsNaN(nv) {
				// NaN compares false with everything, so the threshold
				// switch below would quietly call it "ok".
				regressions++
				fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t-\tREGRESSION (NaN)\n", old.Name, unit, ov, nv)
				continue
			}
			if ov == 0 {
				// No relative delta exists. Zero is a real baseline for
				// /op units (0 allocs/op): any increase regresses. For
				// rates a zero baseline cannot be regressed below.
				verdict := "ok"
				if nv != 0 && strings.HasSuffix(unit, "/op") {
					verdict = "REGRESSION"
					regressions++
				} else if nv != 0 {
					verdict = "info"
				}
				fmt.Fprintf(tw, "%s\t%s\t0\t%g\t-\t%s\n", old.Name, unit, nv, verdict)
				continue
			}
			delta := (nv - ov) / ov
			verdict := "ok"
			switch {
			case strings.HasSuffix(unit, "/op") && delta > threshold:
				verdict = "REGRESSION"
				regressions++
			case strings.HasSuffix(unit, "/s") && delta < -threshold:
				verdict = "REGRESSION"
				regressions++
			case strings.HasSuffix(unit, "/op") && delta < -threshold,
				strings.HasSuffix(unit, "/s") && delta > threshold:
				verdict = "improved"
			case !strings.HasSuffix(unit, "/op") && !strings.HasSuffix(unit, "/s"):
				verdict = "info"
			}
			fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%+.1f%%\t%s\n", old.Name, unit, ov, nv, 100*delta, verdict)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if missing > 0 {
		fmt.Fprintf(stdout, "note: %d benchmark(s) missing from %s (not fatal)\n", missing, paths[1])
	}
	violations := checkFloors(floors, newRep, stdout)
	switch {
	case regressions > 0 && violations > 0:
		return fmt.Errorf("%d metric(s) regressed more than %.0f%% vs %s and %d floor(s) violated", regressions, 100*threshold, paths[0], violations)
	case regressions > 0:
		return fmt.Errorf("%d metric(s) regressed more than %.0f%% vs %s", regressions, 100*threshold, paths[0])
	case violations > 0:
		return fmt.Errorf("%d floor(s) violated", violations)
	}
	fmt.Fprintf(stdout, "no regressions past %.0f%% vs %s\n", 100*threshold, paths[0])
	return nil
}

// checkFloors evaluates every -floor constraint against the new
// artifact, printing one line per constraint, and returns the number of
// violations. A floor whose benchmark or metric the artifact lacks is a
// violation: an absolute bound that silently stopped being measured is
// exactly the failure mode the flag exists to catch.
func checkFloors(floors []floor, rep Report, stdout io.Writer) int {
	violations := 0
	for _, f := range floors {
		matched := false
		for _, r := range rep.Benchmarks {
			if !f.matches(r.Name) {
				continue
			}
			matched = true
			v, ok := r.Metrics[f.unit]
			bad := !ok || math.IsNaN(v)
			if !bad {
				if strings.HasSuffix(f.unit, "/op") {
					bad = v > f.min
				} else {
					bad = v < f.min
				}
			}
			if bad {
				violations++
				if !ok {
					fmt.Fprintf(stdout, "FLOOR VIOLATED: %s has no %s metric (bound %g)\n", r.Name, f.unit, f.min)
				} else {
					fmt.Fprintf(stdout, "FLOOR VIOLATED: %s %s = %g, bound %g\n", r.Name, f.unit, v, f.min)
				}
			} else {
				fmt.Fprintf(stdout, "floor ok: %s %s = %g (bound %g)\n", r.Name, f.unit, v, f.min)
			}
		}
		if !matched {
			violations++
			fmt.Fprintf(stdout, "FLOOR VIOLATED: no benchmark matches %q\n", f.bench)
		}
	}
	return violations
}

// loadReport reads one benchjson artifact from disk.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return Report{}, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep, nil
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkFoo/sub-4   100   12345 ns/op   7747 trials/s   24 B/op   3 allocs/op
//
// Fields after the iteration count come in value/unit pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
