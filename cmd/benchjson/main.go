// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact. It accepts either the raw benchmark text or the `go test
// -json` event stream (each line a test2json record) on stdin, extracts
// the benchmark result lines, and writes one JSON document with every
// parsed metric — ns/op, B/op, allocs/op, and custom b.ReportMetric
// columns such as trials/s.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -json ./... | benchjson -o BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// GOMAXPROCS suffix, e.g. "BenchmarkMetricsOverhead/enabled-4".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported column.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson writes.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// event is the subset of a test2json record benchjson needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var out string
	switch {
	case len(args) == 0:
	case len(args) == 2 && args[0] == "-o":
		out = args[1]
	default:
		return fmt.Errorf("usage: benchjson [-o file] < bench-output")
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Result{},
	}
	// test2json splits a benchmark result across output events — the name
	// (ending in "\t", no newline) arrives separately from the metrics —
	// so JSON-stream fragments are reassembled per test until a newline
	// completes the logical line.
	pending := map[string]string{}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// `go test -json` wraps every output line in a JSON record; raw
		// bench output is used as-is.
		if strings.HasPrefix(line, "{") {
			var e event
			if err := json.Unmarshal([]byte(line), &e); err == nil {
				if e.Action != "output" {
					continue
				}
				key := e.Package + "\x00" + e.Test
				buf := pending[key] + e.Output
				if !strings.HasSuffix(buf, "\n") {
					pending[key] = buf
					continue
				}
				delete(pending, key)
				line = strings.TrimSuffix(buf, "\n")
			}
		}
		if r, ok := parseBenchLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkFoo/sub-4   100   12345 ns/op   7747 trials/s   24 B/op   3 allocs/op
//
// Fields after the iteration count come in value/unit pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
