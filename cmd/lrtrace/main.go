// Command lrtrace runs a single execution of the Lehmann–Rabin algorithm
// under a chosen scheduling policy and pretty-prints the trace in the
// paper's Section 6.1 notation (program counters with direction arrows) —
// Figure 1 of the paper, animated.
//
// With -jsonl the trace is also streamed, step by step as it happens, to
// a JSONL file in the run-manifest schema (obs.Event with "step" records),
// so single-run traces and sweep telemetry share one set of tooling.
//
// Usage:
//
//	lrtrace [-n ring] [-policy slowest|random|spiteful] [-seed 1] \
//	        [-until-c] [-max-events 60] [-jsonl trace.jsonl]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dining"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lrtrace", flag.ContinueOnError)
	n := fs.Int("n", 3, "ring size")
	policy := fs.String("policy", "slowest", "slowest, random or spiteful")
	seed := fs.Int64("seed", 1, "random seed")
	untilC := fs.Bool("until-c", true, "stop when some process enters its critical region")
	maxEvents := fs.Int("max-events", 60, "event budget")
	jsonl := fs.String("jsonl", "", "also stream the trace as JSONL (run-manifest step events) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		fs.Usage()
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *maxEvents <= 0 {
		fs.Usage()
		return fmt.Errorf("-max-events must be positive, got %d", *maxEvents)
	}

	model := dining.MustNew(*n)
	var pol sim.Policy[dining.State]
	switch *policy {
	case "slowest":
		pol = dining.KeepTrying(sim.Slowest[dining.State]())
	case "random":
		pol = dining.KeepTrying(sim.Random[dining.State](0.5))
	case "spiteful":
		pol = dining.Spiteful()
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	start := dining.AllAt(*n, dining.F)
	rec := trace.NewRecorder(start.String())
	target := dining.InC
	if !*untilC {
		target = func(dining.State) bool { return false }
	}

	// -jsonl streams each step into a manifest-schema event log as it is
	// recorded; the file is created (and the address validated) before the
	// run starts, matching the other tools' up-front flag checks.
	var mw *obs.ManifestWriter
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fs.Usage()
			return fmt.Errorf("-jsonl: %w", err)
		}
		defer f.Close()
		flagValues := map[string]string{}
		fs.VisitAll(func(fl *flag.Flag) { flagValues[fl.Name] = fl.Value.String() })
		mw = obs.NewManifestWriter(f, obs.RunMeta{
			Tool:    "lrtrace",
			Version: obs.Version(),
			Seed:    *seed,
			Options: flagValues,
		})
		rec.Stream(mw)
	}

	rng := rand.New(rand.NewSource(*seed))
	res, err := sim.RunOnce[dining.State](model, pol, target, sim.Options[dining.State]{
		Start:     start,
		SetStart:  true,
		MaxEvents: *maxEvents,
		Observer:  trace.Observer(rec, dining.State.String),
	}, rng)
	if mw != nil {
		if cerr := mw.Close(nil, err); cerr != nil && err == nil {
			return fmt.Errorf("-jsonl: %w", cerr)
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("Lehmann–Rabin, n=%d, policy=%s, seed=%d\n\n", *n, *policy, *seed)
	fmt.Print(rec.Render())
	if res.Reached {
		fmt.Printf("\nsome process entered its critical region at time %.3f after %d events\n",
			res.ReachedAt, res.Events)
	} else {
		fmt.Printf("\nstopped after %d events at time budget; final state %v\n", res.Events, res.Final)
	}
	return nil
}
