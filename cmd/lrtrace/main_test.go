package main

import "testing"

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"slowest", "random", "spiteful"} {
		if err := run([]string{"-n", "3", "-policy", policy, "-seed", "2"}); err != nil {
			t.Errorf("policy %s: %v", policy, err)
		}
	}
}

func TestRunNoTarget(t *testing.T) {
	if err := run([]string{"-n", "2", "-until-c=false", "-max-events", "10"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
}
