package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"slowest", "random", "spiteful"} {
		if err := run([]string{"-n", "3", "-policy", policy, "-seed", "2"}); err != nil {
			t.Errorf("policy %s: %v", policy, err)
		}
	}
}

func TestRunNoTarget(t *testing.T) {
	if err := run([]string{"-n", "2", "-until-c=false", "-max-events", "10"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	tests := [][]string{
		{"-n", "0"},
		{"-max-events", "0"},
		{"-jsonl", filepath.Join(missing, "t.jsonl")},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunJSONL: the streamed trace is a readable manifest whose step
// events mirror the recorded execution and whose meta replays the run.
func TestRunJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-n", "3", "-policy", "slowest", "-seed", "4", "-jsonl", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	log, err := obs.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := log.Meta()
	if meta == nil || meta.Tool != "lrtrace" || meta.Seed != 4 {
		t.Fatalf("meta = %+v", meta)
	}
	if log.Summary == nil {
		t.Fatal("trace manifest not closed")
	}
	steps := log.Steps()
	if len(steps) == 0 {
		t.Fatal("no step events streamed")
	}
	last := steps[len(steps)-1]
	if last.State == "" || last.Action == "" || last.T <= 0 {
		t.Errorf("last step = %+v", last)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].T < steps[i-1].T {
			t.Errorf("steps out of order: %v then %v", steps[i-1], steps[i])
		}
	}
	// The recorded options replay the same trace: same seed, same steps.
	path2 := filepath.Join(t.TempDir(), "replay.jsonl")
	replay := append(obs.ReplayArgs(meta.Options, "jsonl"), "-jsonl", path2)
	if err := run(replay); err != nil {
		t.Fatalf("replay %v: %v", replay, err)
	}
	log2, err := obs.LoadManifest(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log2.Steps(), steps) {
		t.Errorf("replayed steps differ:\n%v\n%v", log2.Steps(), steps)
	}
}
