package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// captureRun runs the CLI with stdout redirected to a pipe and returns
// what it printed, so resume runs can be compared byte-for-byte.
func captureRun(t *testing.T, ctx context.Context, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan string)
	go func() {
		var sb strings.Builder
		if _, err := io.Copy(&sb, r); err != nil {
			t.Errorf("drain stdout pipe: %v", err)
		}
		done <- sb.String()
	}()
	old := os.Stdout
	os.Stdout = w
	runErr := run(ctx, args)
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestRunSmall(t *testing.T) {
	if err := run(context.Background(), []string{"-sizes", "3", "-policies", "slowest,random,spiteful,paced:0.5", "-trials", "20"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplicitWorkers(t *testing.T) {
	// Trials shard across the pool; -workers only changes scheduling, so
	// any worker count must run cleanly on the same seed.
	for _, w := range []string{"1", "4"} {
		if err := run(context.Background(), []string{"-sizes", "3", "-policies", "spiteful", "-trials", "70", "-workers", w}); err != nil {
			t.Fatalf("run -workers %s: %v", w, err)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	tests := [][]string{
		{"-sizes", "x"},
		{"-sizes", "3", "-policies", "unknown"},
		{"-sizes", "3", "-policies", "paced:2"},
		{"-sizes", "3", "-policies", "paced:x"},
		{"-sizes", "1", "-trials", "1"},
		// Flag validation: negative or zero values must be rejected up
		// front with a usage message, not fed to the engine.
		{"-sizes", "3", "-trials", "-5"},
		{"-sizes", "3", "-trials", "0"},
		{"-sizes", "3", "-workers", "-1"},
		{"-sizes", "0"},
		{"-sizes", "-3"},
		{"-sizes", "3", "-within", "0"},
		{"-sizes", "3", "-within", "-2"},
		{"-sizes", "3", "-curve", "-1"},
		{"-sizes", "3", "-quarantine", "-1"},
		{"-sizes", "3", "-budget", "-1s"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("3, 5,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 8 {
		t.Errorf("parseSizes = %v", got)
	}
}

func TestRunCurve(t *testing.T) {
	if err := run(context.Background(), []string{"-sizes", "3", "-policies", "slowest", "-trials", "30", "-curve", "6"}); err != nil {
		t.Fatalf("run -curve: %v", err)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	// A context cancelled before any chunk is claimed must surface
	// ErrInterrupted (wrapped) rather than fabricate results.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-sizes", "3", "-policies", "slowest", "-trials", "50"})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestCheckpointResumeIdenticalOutput(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.json")
	args := func(extra ...string) []string {
		return append([]string{"-sizes", "3", "-policies", "slowest,spiteful", "-trials", "200", "-seed", "7", "-curve", "4"}, extra...)
	}

	want, err := captureRun(t, context.Background(), args())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	// A checkpointed run must produce the same output and leave a
	// loadable state file behind.
	gotCk, err := captureRun(t, context.Background(), args("-checkpoint", ck, "-workers", "3"))
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if gotCk != want {
		t.Errorf("checkpointed output differs from baseline:\n--- want\n%s\n--- got\n%s", want, gotCk)
	}
	cs, err := sim.LoadCheckpointSet(ck)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if len(cs) == 0 {
		t.Fatal("checkpoint file holds no stages")
	}
	for label, cp := range cs {
		if !cp.Complete() {
			t.Errorf("stage %q checkpoint incomplete: %d/%d trials", label, cp.Done(), cp.Trials)
		}
	}

	// Resuming from the completed state file — with a different worker
	// count — must reproduce the baseline byte-for-byte.
	gotRes, err := captureRun(t, context.Background(), args("-resume", ck, "-workers", "1"))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if gotRes != want {
		t.Errorf("resumed output differs from baseline:\n--- want\n%s\n--- got\n%s", want, gotRes)
	}

	// Resuming under mismatched parameters must refuse, not silently
	// blend incompatible estimates.
	if err := run(context.Background(), args("-resume", ck, "-seed", "8")); err == nil {
		t.Error("resume with mismatched -seed accepted")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("mismatched resume error does not mention checkpoint: %v", err)
	}
}

func TestRunBadObservabilityFlags(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	tests := [][]string{
		{"-sizes", "3", "-progress", "-1s"},
		{"-sizes", "3", "-manifest", filepath.Join(missing, "run.jsonl")},
		{"-sizes", "3", "-metrics-out", filepath.Join(missing, "m.json")},
		{"-sizes", "3", "-pprof", "bad addr:xyz"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestManifestRoundTrip is the acceptance criterion for run manifests: a
// recorded run's manifest must carry enough (seed + flag values) to replay
// the run and reproduce the same estimates bit-for-bit.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.jsonl")
	metricsOut := filepath.Join(dir, "metrics.json")
	args := []string{"-sizes", "3", "-policies", "slowest,spiteful", "-trials", "90", "-seed", "13",
		"-progress", "50ms", "-manifest", manifest, "-metrics-out", metricsOut}

	want, err := captureRun(t, context.Background(), args)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}

	log, err := obs.LoadManifest(manifest)
	if err != nil {
		t.Fatalf("load manifest: %v", err)
	}
	meta := log.Meta()
	if meta == nil || meta.Tool != "lrsim" || meta.Seed != 13 {
		t.Fatalf("manifest meta = %+v", meta)
	}
	if log.Summary == nil {
		t.Fatal("manifest has no final summary")
	}
	if got := len(log.Summary.Phases); got != 4 {
		t.Errorf("summary has %d phases, want 4 (2 policies x 2 estimators)", got)
	}
	for _, ph := range log.Summary.Phases {
		if ph.Err != "" || ph.EndUnixNs < ph.StartUnixNs || ph.Estimate == "" {
			t.Errorf("phase %+v malformed", ph)
		}
	}
	const trialsRecorded = 4 * 90
	if got := log.Summary.Metrics.Counters["sim.trials_completed"]; got != trialsRecorded {
		t.Errorf("manifest metrics counted %d trials, want %d", got, trialsRecorded)
	}

	// Replay from the manifest alone: reconstruct the command line from
	// the recorded flag values (dropping the observability flags) and
	// compare stdout byte-for-byte.
	replay := obs.ReplayArgs(meta.Options, "manifest", "metrics-out", "progress", "pprof",
		"checkpoint", "resume", "budget")
	got, err := captureRun(t, context.Background(), replay)
	if err != nil {
		t.Fatalf("replayed run %v: %v", replay, err)
	}
	if got != want {
		t.Errorf("replayed output differs from recorded run:\n--- want\n%s\n--- got\n%s", want, got)
	}

	// The metrics snapshot is valid JSON naming the core instruments.
	data, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics-out is not a JSON snapshot: %v", err)
	}
	if snap.Counters["sim.trials_completed"] != trialsRecorded {
		t.Errorf("metrics-out counters = %+v", snap.Counters)
	}
	if h, ok := snap.Histograms["sim.trial_steps"]; !ok || h.Count != trialsRecorded {
		t.Errorf("metrics-out trial_steps histogram = %+v", snap.Histograms)
	}
}

// TestProgressLine: -progress emits at least one self-describing progress
// line on the requested writer (stderr in production; captured here).
func TestProgressOutput(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.jsonl")
	if err := run(context.Background(), []string{"-sizes", "3", "-policies", "slowest", "-trials", "60",
		"-progress", "1ms", "-manifest", manifest}); err != nil {
		t.Fatalf("run: %v", err)
	}
	log, err := obs.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	for _, e := range log.Events {
		if e.Event == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Error("manifest recorded no progress samples")
	}
}

// TestBitCompatIdenticalOutput: -bitcompat pins the provable identity —
// the compiled cache with cumulative-scan sampling prints the full
// report, curve section included, byte-identical to an uncompiled run.
// (The alias-table default agrees in distribution, not bit for bit; its
// statistical agreement is pinned at the engine level.)
func TestBitCompatIdenticalOutput(t *testing.T) {
	args := []string{"-sizes", "3,4", "-policies", "random,slowest", "-trials", "48",
		"-within", "13", "-curve", "5", "-seed", "7", "-workers", "4"}
	compat, err := captureRun(t, context.Background(), append(args, "-bitcompat"))
	if err != nil {
		t.Fatalf("-bitcompat run: %v", err)
	}
	direct, err := captureRun(t, context.Background(), append(args, "-nocompile"))
	if err != nil {
		t.Fatalf("-nocompile run: %v", err)
	}
	if compat != direct {
		t.Errorf("-bitcompat output differs from -nocompile:\nbitcompat:\n%s\ndirect:\n%s", compat, direct)
	}
}
