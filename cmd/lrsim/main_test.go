package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// captureRun runs the CLI with stdout redirected to a pipe and returns
// what it printed, so resume runs can be compared byte-for-byte.
func captureRun(t *testing.T, ctx context.Context, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan string)
	go func() {
		var sb strings.Builder
		if _, err := io.Copy(&sb, r); err != nil {
			t.Errorf("drain stdout pipe: %v", err)
		}
		done <- sb.String()
	}()
	old := os.Stdout
	os.Stdout = w
	runErr := run(ctx, args)
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestRunSmall(t *testing.T) {
	if err := run(context.Background(), []string{"-sizes", "3", "-policies", "slowest,random,spiteful,paced:0.5", "-trials", "20"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplicitWorkers(t *testing.T) {
	// Trials shard across the pool; -workers only changes scheduling, so
	// any worker count must run cleanly on the same seed.
	for _, w := range []string{"1", "4"} {
		if err := run(context.Background(), []string{"-sizes", "3", "-policies", "spiteful", "-trials", "70", "-workers", w}); err != nil {
			t.Fatalf("run -workers %s: %v", w, err)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	tests := [][]string{
		{"-sizes", "x"},
		{"-sizes", "3", "-policies", "unknown"},
		{"-sizes", "3", "-policies", "paced:2"},
		{"-sizes", "3", "-policies", "paced:x"},
		{"-sizes", "1", "-trials", "1"},
		// Flag validation: negative or zero values must be rejected up
		// front with a usage message, not fed to the engine.
		{"-sizes", "3", "-trials", "-5"},
		{"-sizes", "3", "-trials", "0"},
		{"-sizes", "3", "-workers", "-1"},
		{"-sizes", "0"},
		{"-sizes", "-3"},
		{"-sizes", "3", "-within", "0"},
		{"-sizes", "3", "-within", "-2"},
		{"-sizes", "3", "-curve", "-1"},
		{"-sizes", "3", "-quarantine", "-1"},
		{"-sizes", "3", "-budget", "-1s"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("3, 5,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 8 {
		t.Errorf("parseSizes = %v", got)
	}
}

func TestRunCurve(t *testing.T) {
	if err := run(context.Background(), []string{"-sizes", "3", "-policies", "slowest", "-trials", "30", "-curve", "6"}); err != nil {
		t.Fatalf("run -curve: %v", err)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	// A context cancelled before any chunk is claimed must surface
	// ErrInterrupted (wrapped) rather than fabricate results.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-sizes", "3", "-policies", "slowest", "-trials", "50"})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestCheckpointResumeIdenticalOutput(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.json")
	args := func(extra ...string) []string {
		return append([]string{"-sizes", "3", "-policies", "slowest,spiteful", "-trials", "200", "-seed", "7", "-curve", "4"}, extra...)
	}

	want, err := captureRun(t, context.Background(), args())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	// A checkpointed run must produce the same output and leave a
	// loadable state file behind.
	gotCk, err := captureRun(t, context.Background(), args("-checkpoint", ck, "-workers", "3"))
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if gotCk != want {
		t.Errorf("checkpointed output differs from baseline:\n--- want\n%s\n--- got\n%s", want, gotCk)
	}
	cs, err := sim.LoadCheckpointSet(ck)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if len(cs) == 0 {
		t.Fatal("checkpoint file holds no stages")
	}
	for label, cp := range cs {
		if !cp.Complete() {
			t.Errorf("stage %q checkpoint incomplete: %d/%d trials", label, cp.Done(), cp.Trials)
		}
	}

	// Resuming from the completed state file — with a different worker
	// count — must reproduce the baseline byte-for-byte.
	gotRes, err := captureRun(t, context.Background(), args("-resume", ck, "-workers", "1"))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if gotRes != want {
		t.Errorf("resumed output differs from baseline:\n--- want\n%s\n--- got\n%s", want, gotRes)
	}

	// Resuming under mismatched parameters must refuse, not silently
	// blend incompatible estimates.
	if err := run(context.Background(), args("-resume", ck, "-seed", "8")); err == nil {
		t.Error("resume with mismatched -seed accepted")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("mismatched resume error does not mention checkpoint: %v", err)
	}
}
