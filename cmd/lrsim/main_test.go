package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-sizes", "3", "-policies", "slowest,random,spiteful,paced:0.5", "-trials", "20"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplicitWorkers(t *testing.T) {
	// Trials shard across the pool; -workers only changes scheduling, so
	// any worker count must run cleanly on the same seed.
	for _, w := range []string{"1", "4"} {
		if err := run([]string{"-sizes", "3", "-policies", "spiteful", "-trials", "70", "-workers", w}); err != nil {
			t.Fatalf("run -workers %s: %v", w, err)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	tests := [][]string{
		{"-sizes", "x"},
		{"-sizes", "3", "-policies", "unknown"},
		{"-sizes", "3", "-policies", "paced:2"},
		{"-sizes", "3", "-policies", "paced:x"},
		{"-sizes", "1", "-trials", "1"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("3, 5,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 8 {
		t.Errorf("parseSizes = %v", got)
	}
}

func TestRunCurve(t *testing.T) {
	if err := run([]string{"-sizes", "3", "-policies", "slowest", "-trials", "30", "-curve", "6"}); err != nil {
		t.Fatalf("run -curve: %v", err)
	}
}
