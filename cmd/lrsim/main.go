// Command lrsim runs the dense-time Monte Carlo experiments for the
// Lehmann–Rabin reproduction: for each requested ring size and scheduling
// policy it estimates the probability that some process enters its
// critical region within a deadline (the paper claims at least 1/8 within
// time 13 from any trying state), and the expected time to the critical
// region (the paper bounds it by 63).
//
// Unlike cmd/lrcheck, which quantizes the adversary class and computes
// exact worst cases, lrsim explores the paper's dense-time Unit-Time
// schema directly, one programmable adversary at a time — including a
// malicious history-aware scheduler that manufactures resource conflicts.
//
// Trials are sharded across a worker pool (-workers, default all CPUs) by
// the parallel engine in internal/sim; for a fixed -seed the estimates are
// bit-identical whatever the worker count, so -workers only changes
// wall-clock time.
//
// Usage:
//
//	lrsim [-sizes 3,5,8] [-policies slowest,random,spiteful] \
//	      [-trials 2000] [-within 13] [-seed 1] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/dining"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lrsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lrsim", flag.ContinueOnError)
	sizes := fs.String("sizes", "3,5,8", "comma-separated ring sizes")
	policies := fs.String("policies", "slowest,random,spiteful", "comma-separated policies (slowest, random, spiteful, paced:<alpha>)")
	trials := fs.Int("trials", 2000, "Monte Carlo trials per configuration")
	within := fs.Float64("within", 13, "deadline for the probability estimate")
	seed := fs.Int64("seed", 1, "random seed (per-trial streams are derived from it; results are reproducible for any -workers)")
	workers := fs.Int("workers", 0, "worker goroutines sharding the trials (0 = all CPUs)")
	curveMax := fs.Int("curve", 0, "also print the empirical reach-probability curve up to this deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ns, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	names := strings.Split(*policies, ",")

	fmt.Printf("Lehmann–Rabin Monte Carlo: start = all processes trying (flip-ready), trials = %d\n", *trials)
	fmt.Printf("paper claims: P[reach C within 13] >= 1/8 = 0.125 from any trying state; E[time to C] <= 63\n\n")

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n\tpolicy\tP[C within %g] (95%% Wilson)\tE[time to C] (95%% CI)\n", *within)
	for _, n := range ns {
		for _, name := range names {
			name = strings.TrimSpace(name)
			model, err := dining.New(n)
			if err != nil {
				return err
			}
			mk, err := policyFactory(name)
			if err != nil {
				return err
			}
			opts := sim.Options[dining.State]{
				Start:    dining.AllAt(n, dining.F),
				SetStart: true,
			}
			popts := sim.ParallelOptions{Workers: *workers, Seed: *seed}
			probEst, err := sim.EstimateReachProbParallel[dining.State](model, mk, dining.InC, *within, *trials, opts, popts)
			if err != nil {
				return err
			}
			timeEst, err := sim.EstimateTimeToTargetParallel[dining.State](model, mk, dining.InC, *trials, opts, popts)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", n, name, probEst.String(), timeEst.String())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *curveMax > 0 {
		n := ns[0]
		name := strings.TrimSpace(names[0])
		model, err := dining.New(n)
		if err != nil {
			return err
		}
		mk, err := policyFactory(name)
		if err != nil {
			return err
		}
		deadlines := make([]float64, *curveMax)
		for i := range deadlines {
			deadlines[i] = float64(i + 1)
		}
		curve, err := sim.EstimateCurveParallel[dining.State](model, mk, dining.InC, deadlines, *trials,
			sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true},
			sim.ParallelOptions{Workers: *workers, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("\nempirical P[C within t] at n=%d under %s (the Monte Carlo analogue of lrcheck -curve):\n", n, name)
		for i := range curve.Deadlines {
			est, lo, hi, err := curve.Point(i)
			if err != nil {
				return err
			}
			fmt.Printf("  t=%-4g %.4f [%.4f, %.4f]\n", curve.Deadlines[i], est, lo, hi)
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad ring size %q: %v", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func policyFactory(name string) (func() sim.Policy[dining.State], error) {
	switch {
	case name == "slowest":
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Slowest[dining.State]())
		}, nil
	case name == "random":
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Random[dining.State](0.5))
		}, nil
	case name == "spiteful":
		return func() sim.Policy[dining.State] {
			return dining.Spiteful()
		}, nil
	case strings.HasPrefix(name, "paced:"):
		alpha, err := strconv.ParseFloat(strings.TrimPrefix(name, "paced:"), 64)
		if err != nil || alpha <= 0 || alpha > 1 {
			return nil, fmt.Errorf("bad paced alpha in %q", name)
		}
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Paced[dining.State](alpha))
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
