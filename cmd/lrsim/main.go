// Command lrsim runs the dense-time Monte Carlo experiments for the
// Lehmann–Rabin reproduction: for each requested ring size and scheduling
// policy it estimates the probability that some process enters its
// critical region within a deadline (the paper claims at least 1/8 within
// time 13 from any trying state), and the expected time to the critical
// region (the paper bounds it by 63).
//
// Unlike cmd/lrcheck, which quantizes the adversary class and computes
// exact worst cases, lrsim explores the paper's dense-time Unit-Time
// schema directly, one programmable adversary at a time — including a
// malicious history-aware scheduler that manufactures resource conflicts.
//
// Trials are sharded across a worker pool (-workers, default all CPUs) by
// the parallel engine in internal/sim; for a fixed -seed the estimates are
// bit-identical whatever the worker count, so -workers only changes
// wall-clock time.
//
// The run is resilient: SIGINT/SIGTERM or an expired -budget drains
// in-flight work and prints partial estimates (with the trial count
// actually completed) instead of discarding everything; -checkpoint
// persists chunk-granularity progress as a JSON state file, and -resume
// continues from one bit-identically — a resumed run prints exactly the
// estimates an uninterrupted run would have. Panicking trials are
// quarantined up to -quarantine, each recorded with the RNG seed that
// replays the crash in a single sim.RunOnce.
//
// The run is observable: -progress prints a live line (trials/sec, ETA,
// running estimate with confidence half-width, quarantine count,
// checkpoint age) at the given interval; -manifest records a JSONL event
// log plus a final JSON summary (seed, every flag value, build version,
// per-phase timings, metrics snapshot) that documents the run and replays
// it (obs.ReplayArgs); -metrics-out dumps the final metrics registry as
// JSON; -pprof serves net/http/pprof, expvar and the live metrics on the
// given address for the duration of the run; -trace-out records a span
// per sweep chunk (stamped with its stage label) under one root job span
// as a JSONL trace that cmd/simtrace merges into a timeline. All of it
// rides the engine's telemetry hook, which costs nothing when no flag is
// set.
//
// Usage:
//
//	lrsim [-sizes 3,5,8] [-policies slowest,random,spiteful] \
//	      [-trials 2000] [-within 13] [-seed 1] [-workers N] \
//	      [-budget 10m] [-checkpoint state.json] [-resume state.json] \
//	      [-keep 3] [-quarantine N] [-trial-timeout 30s] \
//	      [-progress 2s] [-manifest run.jsonl] [-trace-out run.trace] \
//	      [-metrics-out metrics.json] [-pprof localhost:6060] [-nocompile] [-bitcompat]
//
// The model is compiled once per ring size (sim.Compile: a shared
// transition cache plus alias-table samplers) and reused across every
// estimate, so later stages run fully warm; -nocompile switches the
// cache off for debugging or perf comparison, and -bitcompat keeps the
// cache but samples with the cumulative scan — with it the printed
// estimates are byte-identical to an uncompiled run of the same seed
// (without it they agree in distribution, not bit for bit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/dining"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lrsim:", err)
		os.Exit(1)
	}
}

// usageError reports a bad flag value together with the usage text.
func usageError(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return fmt.Errorf(format, args...)
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("lrsim", flag.ContinueOnError)
	sizes := fs.String("sizes", "3,5,8", "comma-separated ring sizes")
	policies := fs.String("policies", "slowest,random,spiteful", "comma-separated policies (slowest, random, spiteful, paced:<alpha>)")
	trials := fs.Int("trials", 2000, "Monte Carlo trials per configuration")
	within := fs.Float64("within", 13, "deadline for the probability estimate")
	seed := fs.Int64("seed", 1, "random seed (per-trial streams are derived from it; results are reproducible for any -workers)")
	workers := fs.Int("workers", 0, "worker goroutines sharding the trials (0 = all CPUs)")
	curveMax := fs.Int("curve", 0, "also print the empirical reach-probability curve up to this deadline")
	budget := fs.Duration("budget", 0, "wall-clock budget; on expiry in-flight chunks drain and partial estimates print with a resume token (0 = none)")
	checkpoint := fs.String("checkpoint", "", "persist chunk-granularity progress to this JSON state file as trials complete")
	resume := fs.String("resume", "", "resume from this state file (and keep updating it); the final estimates are bit-identical to an uninterrupted run")
	quarantine := fs.Int("quarantine", 0, "panicking or stalled trials tolerated per estimate (recorded with repro seeds, excluded from it) before aborting")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-trial watchdog: quarantine a trial that runs longer than this wall-clock budget (0 = off)")
	keep := fs.Int("keep", 3, "checkpoint generations to retain (state.json, state.json.g1, ...); loads fall back to the newest valid one")
	progress := fs.Duration("progress", 0, "print a live progress line to stderr at this interval (0 = off)")
	manifest := fs.String("manifest", "", "record a JSONL run manifest (events + final summary) to this file")
	traceOut := fs.String("trace-out", "", "record a JSONL trace (one span per sweep chunk under a root job span) to this file; analyze with simtrace")
	metricsOut := fs.String("metrics-out", "", "write the final metrics registry snapshot as JSON to this file")
	pprof := fs.String("pprof", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address for the duration of the run")
	nocompile := fs.Bool("nocompile", false, "disable the compiled-model transition cache (estimates are identical; for debugging and perf comparison)")
	bitcompat := fs.Bool("bitcompat", false, "sample compiled moves with the cumulative scan instead of alias tables: slower, but bit-identical to -nocompile for the same seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *trials <= 0:
		return usageError(fs, "-trials must be positive, got %d", *trials)
	case *workers < 0:
		return usageError(fs, "-workers must be >= 0, got %d", *workers)
	case *within <= 0:
		return usageError(fs, "-within must be positive, got %g", *within)
	case *curveMax < 0:
		return usageError(fs, "-curve must be >= 0, got %d", *curveMax)
	case *budget < 0:
		return usageError(fs, "-budget must be >= 0, got %v", *budget)
	case *quarantine < 0:
		return usageError(fs, "-quarantine must be >= 0, got %d", *quarantine)
	case *progress < 0:
		return usageError(fs, "-progress must be >= 0, got %v", *progress)
	case *trialTimeout < 0:
		return usageError(fs, "-trial-timeout must be >= 0, got %v", *trialTimeout)
	case *keep < 1:
		return usageError(fs, "-keep must be >= 1, got %d", *keep)
	}
	ns, err := parseSizes(*sizes)
	if err != nil {
		return usageError(fs, "%v", err)
	}
	names := strings.Split(*policies, ",")

	// The manifest records every flag at its effective value: together
	// with the tool name this is the full reproduction recipe.
	flagValues := map[string]string{}
	fs.VisitAll(func(f *flag.Flag) { flagValues[f.Name] = f.Value.String() })
	stages := 2 * len(ns) * len(names)
	if *curveMax > 0 {
		stages++
	}
	ins, err := obs.Setup(obs.Config{
		Tool:        "lrsim",
		Seed:        *seed,
		Options:     flagValues,
		Resume:      *resume,
		TotalTrials: stages * *trials,
		Progress:    *progress,
		MetricsOut:  *metricsOut,
		Manifest:    *manifest,
		Pprof:       *pprof,
	})
	if err != nil {
		return usageError(fs, "%v", err)
	}

	// A tracer when -trace-out is set, else nil: every span call below
	// no-ops on the nil tracer, so the untraced run pays one nil check.
	var tracer *span.Tracer
	if *traceOut != "" {
		tracer, err = span.Open(*traceOut, span.Options{Service: "lrsim"})
		if err != nil {
			return err
		}
	}
	root := tracer.Start("job", span.SpanContext{},
		span.Str("tool", "lrsim"), span.Str("sizes", *sizes), span.Str("policies", *policies),
		span.Int("trials", *trials), span.Int64("seed", *seed))

	// The experiment body runs inside a closure so every exit path —
	// success, interrupt, estimator error — flushes the instrumentation
	// sinks with the run's actual outcome.
	runErr := func() error {
		return experiments(ctx, ins, params{
			ns: ns, names: names, trials: *trials, within: *within,
			seed: *seed, workers: *workers, curveMax: *curveMax,
			budget: *budget, checkpoint: *checkpoint, resume: *resume,
			quarantine: *quarantine, nocompile: *nocompile, bitcompat: *bitcompat,
			trialTimeout: *trialTimeout, keep: *keep,
			tracer: tracer, traceParent: root.Context(),
		})
	}()
	outcome := "complete"
	if runErr != nil {
		outcome = "error"
	}
	root.End(span.Str("outcome", outcome))
	if cerr := tracer.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if cerr := ins.Close(runErr); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return runErr
}

// params carries the validated flag values into the experiment body.
type params struct {
	ns           []int
	names        []string
	trials       int
	within       float64
	seed         int64
	workers      int
	curveMax     int
	budget       time.Duration
	checkpoint   string
	resume       string
	quarantine   int
	nocompile    bool
	bitcompat    bool
	trialTimeout time.Duration
	keep         int
	tracer       *span.Tracer
	traceParent  span.SpanContext
}

func experiments(ctx context.Context, ins *obs.Instrumentation, p params) error {
	ns, names := p.ns, p.names

	// SIGINT/SIGTERM cancel the context for a graceful drain; stop() is
	// re-armed the moment that happens, so a second signal kills the
	// process the default way instead of being swallowed.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	if p.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, p.budget, fmt.Errorf("wall-clock budget %v expired", p.budget))
		defer cancel()
	}

	// The checkpoint state file maps a stage label (size × policy ×
	// estimator) to its resume token; -resume without -checkpoint keeps
	// updating the same file. All state-file I/O goes through the durable
	// artifact store: checksummed envelopes, -keep generations, automatic
	// fallback to the newest valid one, retried transient write faults.
	store := &sim.ArtifactStore{Keep: p.keep}
	if sm := ins.Metrics(); sm != nil {
		store.Metrics = sm
	}
	ckPath := p.checkpoint
	if ckPath == "" {
		ckPath = p.resume
	}
	var cs sim.CheckpointSet
	if p.resume != "" {
		loaded, info, err := store.Load(p.resume)
		if err != nil {
			return err
		}
		cs = loaded
		if len(info.Corrupt) > 0 {
			fmt.Fprintf(os.Stderr, "lrsim: corrupt checkpoint generation(s) skipped: %s\n", strings.Join(info.Corrupt, ", "))
		}
		if info.Generation > 0 {
			fmt.Fprintf(os.Stderr, "lrsim: resuming from backup generation %d (%s)\n", info.Generation, info.Path)
		}
	} else if ckPath != "" {
		cs = sim.CheckpointSet{}
	}
	// One compiled model per ring size, shared by every stage that uses
	// that size (reach, time, curve): the transition cache built during
	// the first estimate serves the rest warm. With -nocompile the raw
	// model is used and RunParallel is told not to compile it either.
	models := map[int]sched.Model[dining.State]{}
	newModel := func(n int) (sched.Model[dining.State], error) {
		if m, ok := models[n]; ok {
			return m, nil
		}
		var m sched.Model[dining.State]
		m, err := dining.New(n)
		if err != nil {
			return nil, err
		}
		if !p.nocompile {
			m = sim.Compile[dining.State](m)
		}
		models[n] = m
		return m, nil
	}
	makePopts := func(label string) sim.ParallelOptions {
		popts := sim.ParallelOptions{Workers: p.workers, Seed: p.seed, MaxPanics: p.quarantine,
			NoCompile: p.nocompile, TrialTimeout: p.trialTimeout}
		if sm := ins.Metrics(); sm != nil {
			popts.Metrics = sm
		}
		// The nil-tracer gate must stay explicit: assigning a typed-nil
		// *ChunkSpanner to the SpanHooks interface would defeat the
		// engine's nil check.
		if p.tracer != nil {
			popts.SpanHooks = span.ChunkSpans(p.tracer, p.traceParent, span.Str("stage", label))
			popts.PprofLabels = []string{"fabric_job", fmt.Sprintf("lrsim-s%d", p.seed), "stage", label}
		}
		if cs != nil {
			popts.Resume = cs[label]
			popts.CheckpointSink = func(cp *sim.Checkpoint) error {
				cs[label] = cp
				return store.Save(ckPath, cs)
			}
		}
		return popts
	}

	fmt.Printf("Lehmann–Rabin Monte Carlo: start = all processes trying (flip-ready), trials = %d\n", p.trials)
	fmt.Printf("paper claims: P[reach C within 13] >= 1/8 = 0.125 from any trying state; E[time to C] <= 63\n\n")

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n\tpolicy\tP[C within %g] (95%% Wilson)\tE[time to C] (95%% CI)\n", p.within)

	// interrupted finalizes a partially completed run: flush what we
	// have, point at the resume token, and report the cancellation cause.
	interrupted := func(stage string, rep sim.RunReport) error {
		tw.Flush()
		fmt.Printf("\ninterrupted during %s: %s\n", stage, rep)
		if ckPath != "" {
			fmt.Printf("resume bit-identically with: lrsim -resume %s (plus the original flags)\n", ckPath)
		} else {
			fmt.Println("(run with -checkpoint FILE to make interrupted progress resumable)")
		}
		return fmt.Errorf("interrupted during %s after %d/%d trials: %w",
			stage, rep.Completed, rep.Total, context.Cause(ctx))
	}

	for _, n := range ns {
		for _, name := range names {
			name = strings.TrimSpace(name)
			model, err := newModel(n)
			if err != nil {
				return err
			}
			mk, err := policyFactory(name)
			if err != nil {
				return err
			}
			opts := sim.Options[dining.State]{
				Start:     dining.AllAt(n, dining.F),
				SetStart:  true,
				BitCompat: p.bitcompat,
			}
			stage := fmt.Sprintf("n=%d/%s", n, name)
			ins.PhaseStart(stage + "/reach")
			probEst, probRep, err := sim.EstimateReachProbParallel[dining.State](ctx, model, mk, dining.InC,
				p.within, p.trials, opts, makePopts(stage+"/reach"))
			ins.PhaseDone(stage+"/reach", probEst.String(), probRep.String(), err)
			reportQuarantine(stage+"/reach", probRep)
			if errors.Is(err, sim.ErrInterrupted) {
				if probRep.Completed > 0 {
					fmt.Fprintf(tw, "%d\t%s\t%s [partial: %s]\t-\n", n, name, probEst.String(), probRep)
				}
				return interrupted(stage+"/reach", probRep)
			}
			if err != nil {
				return err
			}
			ins.PhaseStart(stage + "/time")
			timeEst, timeRep, err := sim.EstimateTimeToTargetParallel[dining.State](ctx, model, mk, dining.InC,
				p.trials, opts, makePopts(stage+"/time"))
			ins.PhaseDone(stage+"/time", timeEst.String(), timeRep.String(), err)
			reportQuarantine(stage+"/time", timeRep)
			if errors.Is(err, sim.ErrInterrupted) {
				fmt.Fprintf(tw, "%d\t%s\t%s\t%s [partial: %s]\n", n, name, probEst.String(), timeEst.String(), timeRep)
				return interrupted(stage+"/time", timeRep)
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", n, name, probEst.String(), timeEst.String())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if p.curveMax > 0 {
		n := ns[0]
		name := strings.TrimSpace(names[0])
		model, err := newModel(n)
		if err != nil {
			return err
		}
		mk, err := policyFactory(name)
		if err != nil {
			return err
		}
		deadlines := make([]float64, p.curveMax)
		for i := range deadlines {
			deadlines[i] = float64(i + 1)
		}
		stage := fmt.Sprintf("n=%d/%s/curve@%d", n, name, p.curveMax)
		ins.PhaseStart(stage)
		curve, curveRep, err := sim.EstimateCurveParallel[dining.State](ctx, model, mk, dining.InC, deadlines, p.trials,
			sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true, BitCompat: p.bitcompat},
			makePopts(stage))
		ins.PhaseDone(stage, fmt.Sprintf("curve over %d deadlines", len(curve.Deadlines)), curveRep.String(), err)
		reportQuarantine(stage, curveRep)
		partial := ""
		if errors.Is(err, sim.ErrInterrupted) {
			if curveRep.Completed == 0 {
				return interrupted(stage, curveRep)
			}
			partial = fmt.Sprintf(" [partial: %s]", curveRep)
		} else if err != nil {
			return err
		}
		fmt.Printf("\nempirical P[C within t] at n=%d under %s (the Monte Carlo analogue of lrcheck -curve)%s:\n", n, name, partial)
		for i := range curve.Deadlines {
			est, lo, hi, err := curve.Point(i)
			if err != nil {
				return err
			}
			fmt.Printf("  t=%-4g %.4f [%.4f, %.4f]\n", curve.Deadlines[i], est, lo, hi)
		}
		if partial != "" {
			return interrupted(stage, curveRep)
		}
	}
	return nil
}

// reportQuarantine lists quarantined trials — panics and watchdog stalls
// — with their repro seeds; the quarantine keeps a crashing or stuck
// trial from killing the run, but every one stays loudly visible and
// individually replayable.
func reportQuarantine(stage string, rep sim.RunReport) {
	if rep.Quarantined == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "lrsim: %s: %d trials quarantined (%d panicked, %d stalled; excluded from the estimate):\n",
		stage, rep.Quarantined, rep.Quarantined-rep.Stalled, rep.Stalled)
	for _, pr := range rep.Panics {
		verb := "panicked"
		if pr.Kind == sim.RecordStalled {
			verb = "stalled"
		}
		fmt.Fprintf(os.Stderr, "  trial %d %s: %s — replay: sim.ReproTrial with the run's root seed and trial %d (trial RNG seed %d)\n", pr.Trial, verb, pr.Value, pr.Trial, pr.Seed)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad ring size %q: %v", part, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("ring size must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func policyFactory(name string) (func() sim.Policy[dining.State], error) {
	switch {
	case name == "slowest":
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Slowest[dining.State]())
		}, nil
	case name == "random":
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Random[dining.State](0.5))
		}, nil
	case name == "spiteful":
		return func() sim.Policy[dining.State] {
			return dining.Spiteful()
		}, nil
	case strings.HasPrefix(name, "paced:"):
		alpha, err := strconv.ParseFloat(strings.TrimPrefix(name, "paced:"), 64)
		if err != nil || alpha <= 0 || alpha > 1 {
			return nil, fmt.Errorf("bad paced alpha in %q", name)
		}
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Paced[dining.State](alpha))
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
