package main

// CLI-level chaos: the test re-executes itself as a real lrsim process
// (TestMain trampoline), SIGKILLs it mid-run while it checkpoints,
// corrupts the newest checkpoint generation between legs, and resumes
// until a leg completes cleanly. The surviving leg's stdout must be
// byte-identical to an uninterrupted run — crashes and corruption may
// cost progress, never correctness.
//
// Every random decision of a storm derives from one seed, printed via
// t.Logf (visible on failure and under -v); replay a failing storm with
// CHAOS_SEED=<seed> go test -run TestChaos ./cmd/lrsim/. CHAOS_STORMS
// scales the number of storms (the `make chaos` target raises it).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the lrsim entrypoint: with LRSIM_RUN_CLI=1 the
// test binary IS lrsim (arguments go straight to run), which lets the
// storm below spawn and SIGKILL real OS processes without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("LRSIM_RUN_CLI") == "1" {
		if err := run(context.Background(), os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "lrsim:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// chaosSeedCLI returns the storm seed: CHAOS_SEED when set (replay),
// fresh otherwise. The seed is logged so a failure is always replayable.
func chaosSeedCLI(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos: replaying CHAOS_SEED=%d", v)
		return v
	}
	v := time.Now().UnixNano()
	t.Logf("chaos seed %d (replay with CHAOS_SEED=%d)", v, v)
	return v
}

// chaosStormsCLI returns how many storms to run: CHAOS_STORMS when set,
// else the given default.
func chaosStormsCLI(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("CHAOS_STORMS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("CHAOS_STORMS %q: %v", s, err)
		}
		return v
	}
	return def
}

// runCLI spawns a re-exec'd lrsim with args; when kill > 0 the process
// is SIGKILLed after that delay (the delay racing the run is the point).
func runCLI(t *testing.T, args []string, kill time.Duration) (stdout, stderr string, err error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "LRSIM_RUN_CLI=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var timer *time.Timer
	if kill > 0 {
		timer = time.AfterFunc(kill, func() { _ = cmd.Process.Kill() })
	}
	err = cmd.Wait()
	if timer != nil {
		timer.Stop()
	}
	return out.String(), errb.String(), err
}

// killed reports whether the child died from our SIGKILL rather than
// exiting on its own.
func killed(err error) bool {
	var ee *exec.ExitError
	return errors.As(err, &ee) && ee.ExitCode() == -1
}

// genFile names generation g the way the artifact store does.
func genFile(path string, g int) string {
	if g == 0 {
		return path
	}
	return fmt.Sprintf("%s.g%d", path, g)
}

// corruptState damages the current checkpoint generation the way a
// failing disk would: truncation or a bit flip.
func corruptState(t *testing.T, rng *rand.Rand, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return // nothing saved yet; nothing to corrupt
	}
	switch rng.Intn(2) {
	case 0:
		data = data[:rng.Intn(len(data))]
	case 1:
		data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillResumeStorm: a checkpointing lrsim process is SIGKILLed
// at a random point in its run, its newest state file randomly corrupted,
// and resumed (with a rotating worker count) until one leg survives; that
// leg's stdout must match an uninterrupted run byte-for-byte.
func TestChaosKillResumeStorm(t *testing.T) {
	base := []string{"-sizes", "4", "-policies", "slowest,spiteful", "-trials", "448", "-seed", "11", "-curve", "4"}

	start := time.Now()
	want, _, err := runCLI(t, base, 0)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	baseDur := time.Since(start)

	seed := chaosSeedCLI(t)
	storms := chaosStormsCLI(t, 1)
	for storm := 0; storm < storms; storm++ {
		rng := rand.New(rand.NewSource(seed + int64(storm)))
		dir := t.TempDir()
		ck := filepath.Join(dir, "state.json")

		completed := false
		for leg := 0; leg < 60 && !completed; leg++ {
			args := append(append([]string{}, base...),
				"-workers", strconv.Itoa([]int{1, 2, 8}[leg%3]))
			if _, err := os.Stat(ck); err == nil {
				args = append(args, "-resume", ck)
			} else {
				args = append(args, "-checkpoint", ck)
			}
			// Uniform over 1.5x the uninterrupted duration: most kills land
			// mid-run, but enough legs outlive the timer to converge.
			kill := time.Duration(rng.Int63n(int64(baseDur)*3/2 + 1))
			stdout, stderr, err := runCLI(t, args, kill)
			switch {
			case err == nil:
				// The storm's verdict: byte-identical to the uninterrupted run.
				if stdout != want {
					t.Fatalf("storm %d (seed %d): resumed output differs from uninterrupted run:\n--- want\n%s\n--- got\n%s",
						storm, seed, want, stdout)
				}
				completed = true
			case killed(err):
				// The crash we injected; the next leg resumes.
			case strings.Contains(stderr, "checkpoint"):
				// Every generation corrupted (possible when a kill lands
				// inside rotation and the storm then hits the survivor):
				// progress is lost, correctness is not — wipe and restart.
				for g := 0; g < 8; g++ {
					os.Remove(genFile(ck, g))
				}
			default:
				t.Fatalf("storm %d leg %d (seed %d): unexpected failure: %v\nstderr:\n%s",
					storm, leg, seed, err, stderr)
			}
			if !completed && rng.Float64() < 0.4 {
				corruptState(t, rng, ck)
			}
		}
		if !completed {
			t.Fatalf("storm %d (seed %d): did not converge in 60 legs", storm, seed)
		}
	}
}
